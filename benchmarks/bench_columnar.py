"""Columnar data-plane benchmark: encode-once frames vs record-at-a-time.

Measures the :class:`~repro.engine.batch.BatchQueryEngine` end to end —
ingest (frame encode + shared prefilter + engine construction) plus a short
dynamic-preference query mix — with the frame path on (``EncodedFrame``
columns streaming through the kernels) and off (the per-record reference
path), at 50k-200k rows on the anticorrelated workload.  Each configuration
runs in a fresh subprocess so peak RSS is attributable to it alone; results
land in ``benchmarks/results/BENCH_columnar.json``.

Run under pytest (``pytest benchmarks/bench_columnar.py``) or standalone::

    python benchmarks/bench_columnar.py [--quick]

The acceptance target — >=2x end-to-end speedup with the frame path at the
200k-row sweep — is asserted only when NumPy is available (the tuple-backed
fallback frame is a correctness artifact, not a fast path), mirroring how
``bench_kernels.py`` arms its NumPy target.  Correctness (identical skyline
id sets between the two paths) is always asserted.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: Acceptance target: >=2x end-to-end speedup (ingest + queries) for the
#: frame path at the target cardinality, NumPy kernel, anticorrelated data.
SPEEDUP_TARGET = 2.0
TARGET_CARDINALITY = 200_000

FULL_CARDINALITIES = (50_000, 100_000, 200_000)
QUICK_CARDINALITIES = (20_000,)
QUERY_SEEDS = (7, 8)
MODES = ("record", "frame")
#: Child runs per configuration; the best (min total) one is scored, which
#: keeps the speedup ratio stable on noisy shared/1-CPU hosts.
REPEATS = 3

WORKLOAD = {
    "distribution": "anticorrelated",
    "num_total_order": 2,
    "num_partial_order": 1,
    "dag_height": 6,
    "dag_density": 0.8,
    "seed": 7,
}


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _child_measure(cardinality: int, mode: str) -> dict[str, object]:
    """One configuration, measured inside this (fresh) process."""
    import resource

    from repro.data.workloads import WorkloadSpec
    from repro.engine.batch import BatchQuery, BatchQueryEngine, queries_from_seeds

    spec = WorkloadSpec(name="bench-columnar", cardinality=cardinality, **WORKLOAD)
    schema, dataset = spec.build()
    queries = [BatchQuery("base")] + queries_from_seeds(schema, QUERY_SEEDS)

    started = time.perf_counter()
    engine = BatchQueryEngine(dataset, use_frame=(mode == "frame"))
    ingest_seconds = time.perf_counter() - started
    results = engine.run(queries)
    query_seconds = time.perf_counter() - started - ingest_seconds

    digest = hashlib.sha256()
    for result in results:
        digest.update(repr(sorted(result.skyline_ids)).encode())
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_rss_bytes = rss if sys.platform == "darwin" else rss * 1024
    return {
        "cardinality": cardinality,
        "mode": mode,
        "ingest_seconds": ingest_seconds,
        "query_seconds": query_seconds,
        "total_seconds": ingest_seconds + query_seconds,
        "peak_rss_bytes": peak_rss_bytes,
        "candidates_after_prefilter": engine.candidate_count,
        "skyline_sizes": [len(result.skyline_ids) for result in results],
        "skyline_digest": digest.hexdigest(),
        "phase_seconds": engine.summary()["phase_seconds"],
    }


def _run_child(cardinality: int, mode: str) -> dict[str, object]:
    """Run one configuration in fresh interpreters; keep the best run."""
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir():
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else str(src)
    runs = []
    for _ in range(REPEATS):
        process = subprocess.run(
            [sys.executable, __file__, "--child", str(cardinality), mode],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        if process.returncode != 0:
            raise RuntimeError(
                f"child run (N={cardinality}, mode={mode}) failed:\n{process.stderr}"
            )
        runs.append(json.loads(process.stdout.splitlines()[-1]))
    best = min(runs, key=lambda run: run["total_seconds"])
    best["runs"] = len(runs)
    return best


def _sweep_cardinality(cardinality: int) -> dict[str, object]:
    by_mode = {mode: _run_child(cardinality, mode) for mode in MODES}
    record, frame = by_mode["record"], by_mode["frame"]
    speedup = (
        record["total_seconds"] / frame["total_seconds"]
        if frame["total_seconds"]
        else 0.0
    )
    for mode in MODES:
        timings = by_mode[mode]
        print(
            f"  N={cardinality} {mode:>6}: ingest {timings['ingest_seconds']:6.2f}s "
            f"+ queries {timings['query_seconds']:5.2f}s = "
            f"{timings['total_seconds']:6.2f}s, peak RSS "
            f"{timings['peak_rss_bytes'] / 1e6:7.1f} MB",
            flush=True,
        )
    print(f"  N={cardinality} frame speedup: {speedup:.2f}x", flush=True)
    return {
        "cardinality": cardinality,
        "modes": by_mode,
        "frame_speedup": speedup,
        "skylines_match": record["skyline_digest"] == frame["skyline_digest"],
        "frame_rss_ratio": (
            frame["peak_rss_bytes"] / record["peak_rss_bytes"]
            if record["peak_rss_bytes"]
            else 0.0
        ),
    }


def run_benchmark(cardinalities) -> dict[str, object]:
    sweeps = [_sweep_cardinality(cardinality) for cardinality in cardinalities]
    return {
        "workload": {
            **WORKLOAD,
            "query_seeds": list(QUERY_SEEDS),
            "numpy_available": _numpy_available(),
        },
        "target": {
            "speedup": SPEEDUP_TARGET,
            "cardinality": TARGET_CARDINALITY,
        },
        "sweeps": sweeps,
    }


def _save(payload: dict[str, object]) -> None:
    from conftest import save_bench_json

    path = save_bench_json("columnar", payload)
    print(f"wrote {path}")


def _assert_targets(payload: dict[str, object]) -> None:
    for sweep in payload["sweeps"]:
        assert sweep["skylines_match"], (
            f"frame and record paths disagree at N={sweep['cardinality']}"
        )
    if not _numpy_available():
        print("NumPy unavailable: columnar speedup target not checked")
        return
    target_sweep = next(
        (s for s in payload["sweeps"] if s["cardinality"] == TARGET_CARDINALITY), None
    )
    if target_sweep is None:
        print("quick profile: columnar speedup target not checked")
        return
    achieved = target_sweep["frame_speedup"]
    assert achieved >= SPEEDUP_TARGET, (
        f"only {achieved:.2f}x end-to-end frame speedup at "
        f"{TARGET_CARDINALITY} tuples (target {SPEEDUP_TARGET}x)"
    )


def _report(payload: dict[str, object]) -> None:
    for sweep in payload["sweeps"]:
        frame = sweep["modes"]["frame"]
        print(
            f"N={sweep['cardinality']}: frame {sweep['frame_speedup']:.2f}x faster, "
            f"RSS ratio {sweep['frame_rss_ratio']:.2f}, phases "
            f"{ {k: round(v, 3) for k, v in frame['phase_seconds'].items()} }"
        )


def test_columnar_speedup():
    """Pytest entry point (quick cardinality, correctness always asserted)."""
    payload = run_benchmark(QUICK_CARDINALITIES)
    _save(payload)
    _report(payload)
    _assert_targets(payload)


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "--child":
        print(json.dumps(_child_measure(int(arguments[1]), arguments[2])))
        return 0
    cardinalities = QUICK_CARDINALITIES if "--quick" in arguments else FULL_CARDINALITIES
    payload = run_benchmark(cardinalities)
    _save(payload)
    _report(payload)
    _assert_targets(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
