"""Shared fixtures for the pytest-benchmark suite.

Every figure/table of the paper has one benchmark module.  Each module

* runs the corresponding experiment sweep exactly once (``benchmark.pedantic``
  with a single round), writing the resulting table to
  ``benchmarks/results/<experiment>.txt`` so the series the paper plots can be
  inspected after the run, and
* micro-benchmarks the competing methods on the experiment's default setting,
  so the pytest-benchmark summary directly shows who wins and by how much.

The parameter grid is controlled by the ``REPRO_BENCH_PROFILE`` environment
variable (``quick`` by default, ``full`` for the larger grid).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.reporting import ExperimentTable
from repro.bench.runner import BenchProfile, DynamicRunner, StaticRunner

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_profile() -> BenchProfile:
    return BenchProfile.from_env()


@pytest.fixture(scope="session")
def save_table():
    """Persist an experiment table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(table: ExperimentTable) -> ExperimentTable:
        path = RESULTS_DIR / f"{table.experiment_id}.txt"
        path.write_text(table.to_text() + "\n", encoding="utf-8")
        print("\n" + table.to_text())
        return table

    return _save


@pytest.fixture(scope="session")
def static_default_runner(bench_profile) -> dict[str, StaticRunner]:
    """One static runner per distribution at the profile's default setting."""
    return {
        distribution: StaticRunner(bench_profile.static_spec(distribution))
        for distribution in ("independent", "anticorrelated")
    }


@pytest.fixture(scope="session")
def dynamic_default_runner(bench_profile) -> dict[str, DynamicRunner]:
    """One dynamic runner per distribution at the profile's default setting."""
    return {
        distribution: DynamicRunner(bench_profile.dynamic_spec(distribution))
        for distribution in ("independent", "anticorrelated")
    }


@pytest.fixture(scope="session")
def run_once():
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(benchmark, func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
