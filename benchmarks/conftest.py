"""Shared fixtures for the pytest-benchmark suite.

Every figure/table of the paper has one benchmark module.  Each module

* runs the corresponding experiment sweep exactly once (``benchmark.pedantic``
  with a single round), writing the resulting table to
  ``benchmarks/results/<experiment>.txt`` so the series the paper plots can be
  inspected after the run, and
* micro-benchmarks the competing methods on the experiment's default setting,
  so the pytest-benchmark summary directly shows who wins and by how much.

The parameter grid is controlled by the ``REPRO_BENCH_PROFILE`` environment
variable (``quick`` by default, ``full`` for the larger grid).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.bench.reporting import ExperimentTable
from repro.bench.runner import BenchProfile, DynamicRunner, StaticRunner
from repro.kernels import get_kernel

RESULTS_DIR = Path(__file__).parent / "results"


def bench_environment() -> dict[str, object]:
    """Environment block stamped into every machine-readable result file."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "kernel": get_kernel().name,
        "profile": BenchProfile.from_env().name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def save_bench_json(name: str, payload: dict[str, object]) -> Path:
    """Write ``BENCH_<name>.json`` under benchmarks/results/ and return it.

    The fixed ``BENCH_`` prefix plus ``environment`` block is the contract
    future PRs rely on to track the perf trajectory across commits.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    document = {"environment": bench_environment(), **payload}
    path.write_text(json.dumps(document, indent=2, default=str) + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def bench_profile() -> BenchProfile:
    return BenchProfile.from_env()


@pytest.fixture(scope="session")
def save_table():
    """Persist an experiment table (text + JSON) under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(table: ExperimentTable) -> ExperimentTable:
        path = RESULTS_DIR / f"{table.experiment_id}.txt"
        path.write_text(table.to_text() + "\n", encoding="utf-8")
        save_bench_json(table.experiment_id, {"table": table.to_json_dict()})
        print("\n" + table.to_text())
        return table

    return _save


@pytest.fixture(scope="session")
def static_default_runner(bench_profile) -> dict[str, StaticRunner]:
    """One static runner per distribution at the profile's default setting."""
    return {
        distribution: StaticRunner(bench_profile.static_spec(distribution))
        for distribution in ("independent", "anticorrelated")
    }


@pytest.fixture(scope="session")
def dynamic_default_runner(bench_profile) -> dict[str, DynamicRunner]:
    """One dynamic runner per distribution at the profile's default setting."""
    return {
        distribution: DynamicRunner(bench_profile.dynamic_spec(distribution))
        for distribution in ("independent", "anticorrelated")
    }


@pytest.fixture(scope="session")
def run_once():
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(benchmark, func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
