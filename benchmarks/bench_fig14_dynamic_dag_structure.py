"""Figure 14: dynamic total time vs DAG height and density (anti-correlated data)."""

import pytest

from repro.bench.experiments import dynamic_dag_structure


def test_fig14_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, dynamic_dag_structure, bench_profile)
    save_table(table)
    expected_rows = len(bench_profile.dag_heights) + len(bench_profile.dag_densities)
    assert len(table.rows) == expected_rows
    # dTSS beats the per-query rebuild across the whole DAG-structure sweep.
    assert all(row["speedup"] > 1.0 for row in table.rows)


@pytest.mark.parametrize("height", [2, 6])
@pytest.mark.parametrize("method", ["TSS", "SDC+"])
def test_fig14_height_extremes(benchmark, bench_profile, height, method):
    from repro.bench.runner import DynamicRunner

    runner = DynamicRunner(bench_profile.dynamic_spec("anticorrelated", dag_height=height))
    partial_orders = runner.query_mapping(1)
    run = benchmark.pedantic(runner.run, args=(method, partial_orders), rounds=1, iterations=1)
    assert run.skyline_size > 0
