"""Spatial index plane benchmark: flat (array-backed) vs pointer R-tree.

Measures the two halves the flat index accelerates — STR bulk loading and
the BBS best-first traversal — separately, at 50k-200k points on the
anticorrelated 3-d workload (hundreds of skyline points, so both the build
and the traversal do real work).  Each configuration runs in a fresh
subprocess so peak RSS is attributable to it alone; results land in
``benchmarks/results/BENCH_index.json``.

Run under pytest (``pytest benchmarks/bench_index.py``) or standalone::

    python benchmarks/bench_index.py [--quick]

The acceptance target — >=3x combined build + query speedup for the flat
tree at the 100k-point sweep — is asserted only when NumPy is available (the
flat backend does not exist without it).  Correctness — bitwise-identical
skyline ids *in discovery order* between the two backends — is always
asserted for every sweep that ran both.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: Acceptance target: >=3x combined (STR build + BBS query) speedup for the
#: flat index at the target cardinality under the NumPy kernel.
SPEEDUP_TARGET = 3.0
TARGET_CARDINALITY = 100_000

FULL_CARDINALITIES = (50_000, 100_000, 200_000)
QUICK_CARDINALITIES = (20_000,)
BACKENDS = ("pointer", "flat")
#: Child runs per configuration; the best (min total) one is scored, which
#: keeps the speedup ratio stable on noisy shared/1-CPU hosts.
REPEATS = 3

WORKLOAD = {
    "distribution": "anticorrelated",
    "num_total_order": 3,
    "num_partial_order": 0,
    "dag_height": 4,
    "dag_density": 0.5,
    "seed": 7,
}


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _child_measure(cardinality: int, backend: str) -> dict[str, object]:
    """One configuration, measured inside this (fresh) process."""
    import resource

    from repro.data.workloads import WorkloadSpec
    from repro.skyline.bbs import bbs_skyline

    spec = WorkloadSpec(name="bench-index", cardinality=cardinality, **WORKLOAD)
    schema, dataset = spec.build()

    started = time.perf_counter()
    if backend == "flat":
        from repro.index.flat import FlatRTree

        tree = FlatRTree.bulk_load(
            schema.num_total_order, dataset.to_numeric_matrix(), max_entries=32
        )
    else:
        from repro.index.rtree import RTree

        entries = [
            (schema.canonical_to_values(record.values), record.id)
            for record in dataset.records
        ]
        tree = RTree.bulk_load(schema.num_total_order, entries, max_entries=32)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    result = bbs_skyline(dataset, tree=tree, index=backend)
    query_seconds = time.perf_counter() - started

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_rss_bytes = rss if sys.platform == "darwin" else rss * 1024
    return {
        "cardinality": cardinality,
        "backend": backend,
        "build_seconds": build_seconds,
        "query_seconds": query_seconds,
        "total_seconds": build_seconds + query_seconds,
        "peak_rss_bytes": peak_rss_bytes,
        "skyline_size": len(result.skyline_ids),
        "dominance_checks": result.stats.dominance_checks,
        "nodes_expanded": result.stats.nodes_expanded,
        # Ordered digest: the discovery order must match too, not just the set.
        "skyline_digest": hashlib.sha256(
            repr(result.skyline_ids).encode()
        ).hexdigest(),
    }


def _run_child(cardinality: int, backend: str) -> dict[str, object]:
    """Run one configuration in fresh interpreters; keep the best run."""
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir():
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else str(src)
    runs = []
    for _ in range(REPEATS):
        process = subprocess.run(
            [sys.executable, __file__, "--child", str(cardinality), backend],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        if process.returncode != 0:
            raise RuntimeError(
                f"child run (N={cardinality}, backend={backend}) failed:\n"
                f"{process.stderr}"
            )
        runs.append(json.loads(process.stdout.splitlines()[-1]))
    best = min(runs, key=lambda run: run["total_seconds"])
    best["runs"] = len(runs)
    return best


def _sweep_cardinality(cardinality: int, backends) -> dict[str, object]:
    by_backend = {backend: _run_child(cardinality, backend) for backend in backends}
    for backend in backends:
        timings = by_backend[backend]
        print(
            f"  N={cardinality} {backend:>7}: build {timings['build_seconds']:6.2f}s "
            f"+ query {timings['query_seconds']:5.2f}s = "
            f"{timings['total_seconds']:6.2f}s, peak RSS "
            f"{timings['peak_rss_bytes'] / 1e6:7.1f} MB",
            flush=True,
        )
    sweep: dict[str, object] = {"cardinality": cardinality, "backends": by_backend}
    if set(backends) == set(BACKENDS):
        pointer, flat = by_backend["pointer"], by_backend["flat"]
        sweep["flat_speedup"] = (
            pointer["total_seconds"] / flat["total_seconds"]
            if flat["total_seconds"]
            else 0.0
        )
        sweep["flat_build_speedup"] = (
            pointer["build_seconds"] / flat["build_seconds"]
            if flat["build_seconds"]
            else 0.0
        )
        sweep["skylines_match"] = pointer["skyline_digest"] == flat["skyline_digest"]
        sweep["flat_rss_ratio"] = (
            flat["peak_rss_bytes"] / pointer["peak_rss_bytes"]
            if pointer["peak_rss_bytes"]
            else 0.0
        )
        print(
            f"  N={cardinality} flat speedup: {sweep['flat_speedup']:.2f}x "
            f"(build {sweep['flat_build_speedup']:.2f}x)",
            flush=True,
        )
    return sweep


def run_benchmark(cardinalities) -> dict[str, object]:
    backends = BACKENDS if _numpy_available() else ("pointer",)
    sweeps = [_sweep_cardinality(cardinality, backends) for cardinality in cardinalities]
    return {
        "workload": {**WORKLOAD, "numpy_available": _numpy_available()},
        "target": {"speedup": SPEEDUP_TARGET, "cardinality": TARGET_CARDINALITY},
        "sweeps": sweeps,
    }


def _save(payload: dict[str, object]) -> None:
    from conftest import save_bench_json

    path = save_bench_json("index", payload)
    print(f"wrote {path}")


def _assert_targets(payload: dict[str, object]) -> None:
    if not _numpy_available():
        print("NumPy unavailable: flat index target not checked")
        return
    for sweep in payload["sweeps"]:
        assert sweep["skylines_match"], (
            f"flat and pointer skylines disagree at N={sweep['cardinality']}"
        )
    target_sweep = next(
        (s for s in payload["sweeps"] if s["cardinality"] == TARGET_CARDINALITY), None
    )
    if target_sweep is None:
        print("quick profile: flat index speedup target not checked")
        return
    achieved = target_sweep["flat_speedup"]
    assert achieved >= SPEEDUP_TARGET, (
        f"only {achieved:.2f}x combined build+query flat speedup at "
        f"{TARGET_CARDINALITY} points (target {SPEEDUP_TARGET}x)"
    )


def _report(payload: dict[str, object]) -> None:
    for sweep in payload["sweeps"]:
        if "flat_speedup" not in sweep:
            continue
        print(
            f"N={sweep['cardinality']}: flat {sweep['flat_speedup']:.2f}x faster "
            f"(build {sweep['flat_build_speedup']:.2f}x), RSS ratio "
            f"{sweep['flat_rss_ratio']:.2f}, skylines match: "
            f"{sweep['skylines_match']}"
        )


def test_index_speedup():
    """Pytest entry point (quick cardinality, correctness always asserted)."""
    payload = run_benchmark(QUICK_CARDINALITIES)
    _save(payload)
    _report(payload)
    _assert_targets(payload)


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "--child":
        print(json.dumps(_child_measure(int(arguments[1]), arguments[2])))
        return 0
    cardinalities = QUICK_CARDINALITIES if "--quick" in arguments else FULL_CARDINALITIES
    payload = run_benchmark(cardinalities)
    _save(payload)
    _report(payload)
    _assert_targets(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
