"""Storage-plane benchmark: CSV cold start vs mmap-ing a packed store.

Measures the time (and peak RSS) from a fresh process to a query-ready
:class:`~repro.engine.batch.BatchQueryEngine` on two ingest paths:

``csv``
    The conventional pipeline — parse the CSV export, build the record
    dataset, encode the frame, run the shared prefilter, build the engine.
``mmap``
    The storage plane — ``repro.open_dataset`` on a file written once by
    ``repro.pack``: checksum pass + zero-copy ``np.memmap`` views, no
    re-encode, no re-prefilter, no re-bulk-load.

Both paths then answer the base query, whose skyline ids must be identical.
Each configuration runs REPEATS times in fresh subprocesses (best run
scored) so cold start and RSS are attributable to it alone; the packed
store and the CSV export are written by the parent and are *not* part of
the measured window.  Results land in ``benchmarks/results/BENCH_store.json``.

Run under pytest (``pytest benchmarks/bench_store.py``) or standalone::

    python benchmarks/bench_store.py [--quick]

The acceptance target — >=5x faster cold start from the packed store at the
200k-row sweep — is asserted only when NumPy is available (without it the
store is loaded through the pure-Python struct path, a correctness fallback,
not a fast path).  Correctness is always asserted.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: Acceptance target: >=5x faster cold start (process start to query-ready
#: engine) from the packed store at the target cardinality.
SPEEDUP_TARGET = 5.0
TARGET_CARDINALITY = 200_000

FULL_CARDINALITIES = (50_000, 100_000, 200_000)
QUICK_CARDINALITIES = (20_000,)
MODES = ("csv", "mmap")
#: Child runs per configuration; the best (min cold start) is scored.
REPEATS = 3

WORKLOAD = {
    "distribution": "anticorrelated",
    "num_total_order": 2,
    "num_partial_order": 1,
    "dag_height": 6,
    "dag_density": 0.8,
    "seed": 7,
}


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _child_measure(mode: str, store_path: str, csv_path: str) -> dict[str, object]:
    """One cold start, measured inside this (fresh) process."""
    import resource

    from repro.engine.batch import BatchQuery, BatchQueryEngine
    from repro.store import DatasetStore

    if mode == "csv":
        # The schema is configuration, not data: read it (cheaply, header
        # only) from the packed store before the clock starts.
        from repro.data.io import load_csv_dataset

        schema = DatasetStore.open(store_path, verify=False).schema
        started = time.perf_counter()
        dataset = load_csv_dataset(csv_path, schema)
        engine = BatchQueryEngine(dataset)
    else:
        started = time.perf_counter()
        engine = BatchQueryEngine(store_path)
    cold_start_seconds = time.perf_counter() - started

    result = engine.run_query(BatchQuery("base"))
    first_query_seconds = time.perf_counter() - started - cold_start_seconds

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_rss_bytes = rss if sys.platform == "darwin" else rss * 1024
    return {
        "mode": mode,
        "cold_start_seconds": cold_start_seconds,
        "first_query_seconds": first_query_seconds,
        "total_seconds": cold_start_seconds + first_query_seconds,
        "peak_rss_bytes": peak_rss_bytes,
        "candidates_after_prefilter": engine.candidate_count,
        "skyline_size": len(result.skyline_ids),
        "skyline_ids_head": sorted(result.skyline_ids)[:32],
        "skyline_checksum": hash(tuple(sorted(result.skyline_ids))) & 0xFFFFFFFF,
    }


def _run_child(mode: str, store_path: Path, csv_path: Path) -> dict[str, object]:
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir():
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else str(src)
    runs = []
    for _ in range(REPEATS):
        process = subprocess.run(
            [sys.executable, __file__, "--child", mode, str(store_path), str(csv_path)],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        if process.returncode != 0:
            raise RuntimeError(f"child run ({mode}) failed:\n{process.stderr}")
        runs.append(json.loads(process.stdout.splitlines()[-1]))
    best = min(runs, key=lambda run: run["cold_start_seconds"])
    best["runs"] = len(runs)
    return best


def _sweep_cardinality(cardinality: int, scratch: Path) -> dict[str, object]:
    from repro.api import pack
    from repro.data.io import save_csv_dataset
    from repro.data.workloads import WorkloadSpec

    spec = WorkloadSpec(name="bench-store", cardinality=cardinality, **WORKLOAD)
    _, dataset = spec.build()
    csv_path = scratch / f"bench_{cardinality}.csv"
    store_path = scratch / f"bench_{cardinality}.rpro"
    save_csv_dataset(dataset, csv_path)
    pack_started = time.perf_counter()
    summary = pack(dataset, store_path)
    pack_seconds = time.perf_counter() - pack_started
    del dataset

    by_mode = {mode: _run_child(mode, store_path, csv_path) for mode in MODES}
    csv_run, mmap_run = by_mode["csv"], by_mode["mmap"]
    speedup = (
        csv_run["cold_start_seconds"] / mmap_run["cold_start_seconds"]
        if mmap_run["cold_start_seconds"]
        else 0.0
    )
    for mode in MODES:
        timings = by_mode[mode]
        print(
            f"  N={cardinality} {mode:>4}: cold start {timings['cold_start_seconds']:6.3f}s "
            f"+ base query {timings['first_query_seconds']:6.3f}s, peak RSS "
            f"{timings['peak_rss_bytes'] / 1e6:7.1f} MB",
            flush=True,
        )
    print(f"  N={cardinality} mmap cold-start speedup: {speedup:.2f}x", flush=True)
    return {
        "cardinality": cardinality,
        "store_bytes": summary["bytes"],
        "csv_bytes": csv_path.stat().st_size,
        "pack_seconds": pack_seconds,
        "modes": by_mode,
        "mmap_cold_start_speedup": speedup,
        "mmap_rss_ratio": (
            mmap_run["peak_rss_bytes"] / csv_run["peak_rss_bytes"]
            if csv_run["peak_rss_bytes"]
            else 0.0
        ),
        "skylines_match": (
            csv_run["skyline_size"] == mmap_run["skyline_size"]
            and csv_run["skyline_ids_head"] == mmap_run["skyline_ids_head"]
            and csv_run["skyline_checksum"] == mmap_run["skyline_checksum"]
        ),
    }


def run_benchmark(cardinalities) -> dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="bench-store-") as scratch:
        sweeps = [
            _sweep_cardinality(cardinality, Path(scratch))
            for cardinality in cardinalities
        ]
    return {
        "workload": {**WORKLOAD, "numpy_available": _numpy_available()},
        "target": {
            "cold_start_speedup": SPEEDUP_TARGET,
            "cardinality": TARGET_CARDINALITY,
        },
        "sweeps": sweeps,
    }


def _save(payload: dict[str, object]) -> None:
    from conftest import save_bench_json

    path = save_bench_json("store", payload)
    print(f"wrote {path}")


def _assert_targets(payload: dict[str, object]) -> None:
    for sweep in payload["sweeps"]:
        assert sweep["skylines_match"], (
            f"csv and mmap cold starts disagree at N={sweep['cardinality']}"
        )
    if not _numpy_available():
        print("NumPy unavailable: store cold-start target not checked")
        return
    target_sweep = next(
        (s for s in payload["sweeps"] if s["cardinality"] == TARGET_CARDINALITY), None
    )
    if target_sweep is None:
        print("quick profile: store cold-start target not checked")
        return
    achieved = target_sweep["mmap_cold_start_speedup"]
    assert achieved >= SPEEDUP_TARGET, (
        f"only {achieved:.2f}x mmap cold-start speedup at "
        f"{TARGET_CARDINALITY} tuples (target {SPEEDUP_TARGET}x)"
    )


def _report(payload: dict[str, object]) -> None:
    for sweep in payload["sweeps"]:
        print(
            f"N={sweep['cardinality']}: mmap cold start "
            f"{sweep['mmap_cold_start_speedup']:.2f}x faster, RSS ratio "
            f"{sweep['mmap_rss_ratio']:.2f}, store "
            f"{sweep['store_bytes'] / 1e6:.1f} MB vs CSV "
            f"{sweep['csv_bytes'] / 1e6:.1f} MB"
        )


def test_store_cold_start():
    """Pytest entry point (quick cardinality, correctness always asserted)."""
    payload = run_benchmark(QUICK_CARDINALITIES)
    _save(payload)
    _report(payload)
    _assert_targets(payload)


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "--child":
        print(json.dumps(_child_measure(arguments[1], arguments[2], arguments[3])))
        return 0
    cardinalities = QUICK_CARDINALITIES if "--quick" in arguments else FULL_CARDINALITIES
    payload = run_benchmark(cardinalities)
    _save(payload)
    _report(payload)
    _assert_targets(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
