"""Microbenchmark: NumPy dominance kernel vs the pure-Python reference.

Times the kernel operations that sit on every skyline hot path — block
dominance sweeps, Pareto-front masks and batched t-dominance — on a
dominance-heavy workload (candidates drawn near the Pareto front, so scans
cannot early-exit), and writes the measurements to
``benchmarks/results/BENCH_kernels.json``.

Run under pytest (``pytest benchmarks/bench_kernels.py``) or standalone::

    python benchmarks/bench_kernels.py [--quick]

The standalone form is what the CI bench-smoke job executes; both forms
assert the NumPy backend's speedup target on the block-dominance sweep when
NumPy is available.
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.mapping import TSSMapping
from repro.core.tdominance import TDominanceChecker
from repro.data.workloads import WorkloadSpec
from repro.kernels import available_kernels, get_kernel

#: Acceptance target: NumPy must beat pure Python by at least this factor on
#: the 50k-tuple block-dominance sweep.
SPEEDUP_TARGET = 3.0

FULL_CARDINALITY = 50_000
QUICK_CARDINALITY = 10_000
DIMENSIONS = 4
NUM_CANDIDATES = 200
REPEATS = 3


def _build_vectors(cardinality: int, seed: int = 11) -> tuple[list, list]:
    """A block of random vectors plus near-Pareto candidates (no early exit)."""
    rng = random.Random(seed)
    block = [
        tuple(rng.uniform(0.0, 1.0) for _ in range(DIMENSIONS))
        for _ in range(cardinality)
    ]
    # Candidates hug the origin, so almost no block member dominates them and
    # every pure-Python scan runs the full block — the dominance-heavy case.
    candidates = [
        tuple(value * 0.05 for value in rng.choice(block)) for _ in range(NUM_CANDIDATES)
    ]
    return block, candidates


def _build_anticorrelated(cardinality: int, seed: int = 17) -> list:
    """Anticorrelated vectors (huge Pareto front — the hard pareto_mask case)."""
    rng = random.Random(seed)
    rows = []
    for _ in range(cardinality):
        base = rng.uniform(0.0, 1.0)
        head = [
            max(0.0, min(1.0, base + rng.uniform(-0.12, 0.12)))
            for _ in range(DIMENSIONS - 1)
        ]
        rows.append((*head, max(0.0, 2.0 - sum(head))))
    return rows


def _build_tdominance(cardinality: int):
    spec = WorkloadSpec(
        name="bench-kernels",
        cardinality=max(2_000, cardinality // 10),
        num_total_order=2,
        num_partial_order=2,
        dag_height=6,
        dag_density=0.8,
        to_domain_size=500,
        seed=13,
    )
    _, dataset = spec.build()
    mapping = TSSMapping(dataset)
    points = mapping.points
    members = points[: len(points) // 2]
    candidates = points[len(points) // 2 :][:NUM_CANDIDATES]
    return mapping, members, candidates


def _best_of(repeats: int, func) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def time_block_dominance(kernel_name: str, block, candidates) -> float:
    kernel = get_kernel(kernel_name)
    store = kernel.vector_store(DIMENSIONS)
    for vector in block:
        store.append(vector)

    def sweep():
        hits = 0
        for candidate in candidates:
            if store.any_dominates(candidate):
                hits += 1
        return hits

    return _best_of(REPEATS, sweep)


def time_pareto_mask(kernel_name: str, block) -> float:
    kernel = get_kernel(kernel_name)
    return _best_of(1, lambda: kernel.pareto_mask(block))


def time_tdominance(kernel_name: str, mapping, members, candidates) -> float:
    checker = TDominanceChecker(mapping, kernel=get_kernel(kernel_name))
    store = checker.make_skyline_store()
    for member in members:
        store.append(member)

    def sweep():
        hits = 0
        for candidate in candidates:
            if checker.store_dominates_point(store, candidate):
                hits += 1
        return hits

    return _best_of(REPEATS, sweep)


def run_benchmark(cardinality: int) -> dict[str, object]:
    """Time every scenario on every available backend; return the payload."""
    block, candidates = _build_vectors(cardinality)
    anticorrelated = _build_anticorrelated(cardinality // 10)
    tdom = _build_tdominance(cardinality)
    scenarios: dict[str, dict[str, float]] = {
        "block_dominance_sweep": {},
        "pareto_mask_anticorrelated": {},
        "tdominance_sweep": {},
    }
    for name in available_kernels():
        scenarios["block_dominance_sweep"][name] = time_block_dominance(
            name, block, candidates
        )
        scenarios["pareto_mask_anticorrelated"][name] = time_pareto_mask(
            name, anticorrelated
        )
        scenarios["tdominance_sweep"][name] = time_tdominance(name, *tdom)

    speedups: dict[str, float] = {}
    if "numpy" in available_kernels():
        for scenario, timings in scenarios.items():
            if timings.get("numpy"):
                speedups[scenario] = timings["purepython"] / timings["numpy"]

    return {
        "workload": {
            "cardinality": cardinality,
            "dimensions": DIMENSIONS,
            "candidates": NUM_CANDIDATES,
            "repeats": REPEATS,
        },
        "seconds": scenarios,
        "speedup_numpy_over_purepython": speedups,
    }


def _save(payload: dict[str, object]) -> None:
    from conftest import save_bench_json

    path = save_bench_json("kernels", payload)
    print(f"wrote {path}")


def _report(payload: dict[str, object]) -> None:
    print(f"workload: {payload['workload']}")
    for scenario, timings in payload["seconds"].items():
        rendered = ", ".join(f"{k}={v * 1000:.1f}ms" for k, v in timings.items())
        speedup = payload["speedup_numpy_over_purepython"].get(scenario)
        extra = f"  (numpy speedup {speedup:.1f}x)" if speedup else ""
        print(f"{scenario:>24}: {rendered}{extra}")


def _assert_target(payload: dict[str, object]) -> None:
    speedups = payload["speedup_numpy_over_purepython"]
    if not speedups:
        print("numpy unavailable: speedup target not checked")
        return
    achieved = speedups["block_dominance_sweep"]
    assert achieved >= SPEEDUP_TARGET, (
        f"numpy kernel only {achieved:.2f}x faster than pure python on the "
        f"block dominance sweep (target {SPEEDUP_TARGET}x)"
    )


def test_kernel_speedup():
    """Pytest entry point (uses the quick cardinality to stay CI-friendly)."""
    payload = run_benchmark(QUICK_CARDINALITY)
    _save(payload)
    _report(payload)
    _assert_target(payload)


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    cardinality = QUICK_CARDINALITY if "--quick" in arguments else FULL_CARDINALITY
    payload = run_benchmark(cardinality)
    _save(payload)
    _report(payload)
    _assert_target(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
