"""Microbenchmark: the dominance kernel tiers against each other.

Times the kernel operations that sit on every skyline hot path — block
dominance sweeps, Pareto-front masks and batched t-dominance — on a
dominance-heavy workload (candidates drawn near the Pareto front, so scans
cannot early-exit), across every available backend (purepython, numpy and —
with numba installed — jit), and writes the measurements to
``benchmarks/results/BENCH_kernels.json``.

A second sweep targets the JIT tier specifically: dominance-bound merge
(``block_dominated_columns``) and BBS-window workloads at 100k rows, numpy
vs jit, recorded to ``benchmarks/results/BENCH_jit.json``.  Pure Python is
excluded there (it would take minutes at that scale) and the jit-over-numpy
speedup target is asserted only when numba is importable — without numba the
payload still records the numpy baseline plus ``numba_available: false``.

Run under pytest (``pytest benchmarks/bench_kernels.py``) or standalone::

    python benchmarks/bench_kernels.py [--quick]

The standalone form is what the CI bench-smoke job executes; both forms
assert the NumPy backend's speedup target on the block-dominance sweep when
NumPy is available, and the JIT target when numba is available.
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.mapping import TSSMapping
from repro.core.tdominance import TDominanceChecker
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.data.workloads import WorkloadSpec
from repro.kernels import RecordTables, available_kernels, get_kernel
from repro.order.dag import PartialOrderDAG

#: Acceptance target: NumPy must beat pure Python by at least this factor on
#: the 50k-tuple block-dominance sweep.
SPEEDUP_TARGET = 3.0

#: Acceptance target: the JIT tier must beat NumPy by at least this factor on
#: the dominance-bound 100k-row workloads (asserted only when numba imports).
JIT_SPEEDUP_TARGET = 2.0

FULL_CARDINALITY = 50_000
QUICK_CARDINALITY = 10_000
#: Row count for the JIT-tier merge/BBS workloads (pure Python excluded).
JIT_FULL_ROWS = 100_000
JIT_QUICK_ROWS = 20_000
DIMENSIONS = 4
NUM_CANDIDATES = 200
REPEATS = 3


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def _build_vectors(cardinality: int, seed: int = 11) -> tuple[list, list]:
    """A block of random vectors plus near-Pareto candidates (no early exit)."""
    rng = random.Random(seed)
    block = [
        tuple(rng.uniform(0.0, 1.0) for _ in range(DIMENSIONS))
        for _ in range(cardinality)
    ]
    # Candidates hug the origin, so almost no block member dominates them and
    # every pure-Python scan runs the full block — the dominance-heavy case.
    candidates = [
        tuple(value * 0.05 for value in rng.choice(block)) for _ in range(NUM_CANDIDATES)
    ]
    return block, candidates


def _build_anticorrelated(cardinality: int, seed: int = 17) -> list:
    """Anticorrelated vectors (huge Pareto front — the hard pareto_mask case)."""
    rng = random.Random(seed)
    rows = []
    for _ in range(cardinality):
        base = rng.uniform(0.0, 1.0)
        head = [
            max(0.0, min(1.0, base + rng.uniform(-0.12, 0.12)))
            for _ in range(DIMENSIONS - 1)
        ]
        rows.append((*head, max(0.0, 2.0 - sum(head))))
    return rows


def _build_tdominance(cardinality: int):
    spec = WorkloadSpec(
        name="bench-kernels",
        cardinality=max(2_000, cardinality // 10),
        num_total_order=2,
        num_partial_order=2,
        dag_height=6,
        dag_density=0.8,
        to_domain_size=500,
        seed=13,
    )
    _, dataset = spec.build()
    mapping = TSSMapping(dataset)
    points = mapping.points
    members = points[: len(points) // 2]
    candidates = points[len(points) // 2 :][:NUM_CANDIDATES]
    return mapping, members, candidates


def _best_of(repeats: int, func) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def time_block_dominance(kernel_name: str, block, candidates) -> float:
    kernel = get_kernel(kernel_name)
    store = kernel.vector_store(DIMENSIONS)
    for vector in block:
        store.append(vector)

    def sweep():
        hits = 0
        for candidate in candidates:
            if store.any_dominates(candidate):
                hits += 1
        return hits

    return _best_of(REPEATS, sweep)


def time_pareto_mask(kernel_name: str, block) -> float:
    kernel = get_kernel(kernel_name)
    return _best_of(1, lambda: kernel.pareto_mask(block))


def time_tdominance(kernel_name: str, mapping, members, candidates) -> float:
    checker = TDominanceChecker(mapping, kernel=get_kernel(kernel_name))
    store = checker.make_skyline_store()
    for member in members:
        store.append(member)

    def sweep():
        hits = 0
        for candidate in candidates:
            if checker.store_dominates_point(store, candidate):
                hits += 1
        return hits

    return _best_of(REPEATS, sweep)


def run_benchmark(cardinality: int) -> dict[str, object]:
    """Time every scenario on every available backend; return the payload."""
    block, candidates = _build_vectors(cardinality)
    anticorrelated = _build_anticorrelated(cardinality // 10)
    tdom = _build_tdominance(cardinality)
    scenarios: dict[str, dict[str, float]] = {
        "block_dominance_sweep": {},
        "pareto_mask_anticorrelated": {},
        "tdominance_sweep": {},
    }
    for name in available_kernels():
        scenarios["block_dominance_sweep"][name] = time_block_dominance(
            name, block, candidates
        )
        scenarios["pareto_mask_anticorrelated"][name] = time_pareto_mask(
            name, anticorrelated
        )
        scenarios["tdominance_sweep"][name] = time_tdominance(name, *tdom)

    speedups: dict[str, float] = {}
    if "numpy" in available_kernels():
        for scenario, timings in scenarios.items():
            if timings.get("numpy"):
                speedups[scenario] = timings["purepython"] / timings["numpy"]

    return {
        "workload": {
            "cardinality": cardinality,
            "dimensions": DIMENSIONS,
            "candidates": NUM_CANDIDATES,
            "repeats": REPEATS,
        },
        "seconds": scenarios,
        "speedup_numpy_over_purepython": speedups,
    }


# --------------------------------------------------------------------- #
# JIT-tier sweep: dominance-bound merge + BBS-window workloads, numpy vs
# jit at 100k rows (pure Python would take minutes there and is excluded).
# --------------------------------------------------------------------- #


def _jit_backends() -> list[str]:
    return [name for name in ("numpy", "jit") if name in available_kernels()]


def _build_merge_workload(rows: int, seed: int = 23):
    """A confirmed-skyline window plus a key-ordered target stream.

    The window members hug the origin so they dominate almost nothing in the
    stream — every backend scans the full window per target (dominance-bound,
    exactly the sort-merge cross-shard merge's worst case).
    """
    rng = random.Random(seed)
    chain = [f"v{i}" for i in range(8)]
    dag = PartialOrderDAG(chain, list(zip(chain, chain[1:])))
    schema = Schema(
        [
            TotalOrderAttribute("a"),
            TotalOrderAttribute("b"),
            PartialOrderAttribute("p", dag),
            PartialOrderAttribute("q", dag),
        ]
    )
    tables = RecordTables.from_schema(schema)
    window_to = [
        (rng.uniform(0.0, 0.05), rng.uniform(0.0, 0.05)) for _ in range(2_000)
    ]
    window_codes = [
        (rng.randrange(2), rng.randrange(2)) for _ in range(len(window_to))
    ]
    stream_to = [(rng.uniform(0.3, 1.0), rng.uniform(0.3, 1.0)) for _ in range(rows)]
    stream_codes = [
        (rng.randrange(2, 8), rng.randrange(2, 8)) for _ in range(rows)
    ]
    return tables, window_to, window_codes, stream_to, stream_codes


def _build_bbs_window_workload(rows: int, seed: int = 29):
    """A BBS dominance window plus MBB best-corner blocks to prune against."""
    rng = random.Random(seed)
    members = [
        tuple(rng.uniform(0.0, 0.08) for _ in range(DIMENSIONS)) for _ in range(2_000)
    ]
    corners = [
        tuple(rng.uniform(0.3, 1.0) for _ in range(DIMENSIONS)) for _ in range(rows)
    ]
    return members, corners


def time_merge_block(kernel_name: str, workload) -> float:
    tables, window_to, window_codes, stream_to, stream_codes = workload
    kernel = get_kernel(kernel_name)
    kernel.warmup()
    store = kernel.load_record_store(tables, window_to, window_codes)
    chunk = 4_096

    def sweep():
        hits = 0
        for begin in range(0, len(stream_to), chunk):
            mask = store.block_dominated_columns(
                stream_to[begin : begin + chunk], stream_codes[begin : begin + chunk]
            )
            hits += sum(mask)
        return hits

    sweep()  # untimed run: first-call conversion/compile costs stay out
    return _best_of(REPEATS, sweep)


def time_bbs_window(kernel_name: str, workload) -> float:
    members, corners = workload
    kernel = get_kernel(kernel_name)
    kernel.warmup()
    store = kernel.load_vector_store(DIMENSIONS, members)
    chunk = 256  # one popped node's children per call, roughly

    def sweep():
        pruned = 0
        for begin in range(0, len(corners), chunk):
            mask = store.mbr_block_dominated(corners[begin : begin + chunk])
            pruned += sum(mask)
        return pruned

    sweep()
    return _best_of(REPEATS, sweep)


def run_jit_benchmark(rows: int) -> dict[str, object]:
    """Time the dominance-bound workloads on numpy (and jit when compiled)."""
    backends = _jit_backends()
    merge = _build_merge_workload(rows)
    bbs = _build_bbs_window_workload(rows)
    scenarios: dict[str, dict[str, float]] = {
        "merge_block_dominated": {},
        "bbs_window_sweep": {},
    }
    for name in backends:
        scenarios["merge_block_dominated"][name] = time_merge_block(name, merge)
        scenarios["bbs_window_sweep"][name] = time_bbs_window(name, bbs)

    speedups: dict[str, float] = {}
    if "jit" in backends:
        for scenario, timings in scenarios.items():
            if timings.get("jit"):
                speedups[scenario] = timings["numpy"] / timings["jit"]

    return {
        "workload": {
            "rows": rows,
            "dimensions": DIMENSIONS,
            "window": 2_000,
            "repeats": REPEATS,
            "excluded": ["purepython"],
        },
        "numba_available": _numba_available(),
        "backends": backends,
        "seconds": scenarios,
        "speedup_jit_over_numpy": speedups,
        "jit_speedup_target": JIT_SPEEDUP_TARGET,
    }


def _report_jit(payload: dict[str, object]) -> None:
    print(f"jit workload: {payload['workload']}")
    if not payload["backends"]:
        print("no vectorized backend available: jit sweep skipped")
        return
    for scenario, timings in payload["seconds"].items():
        rendered = ", ".join(f"{k}={v * 1000:.1f}ms" for k, v in timings.items())
        speedup = payload["speedup_jit_over_numpy"].get(scenario)
        extra = f"  (jit speedup {speedup:.1f}x)" if speedup else ""
        print(f"{scenario:>24}: {rendered}{extra}")
    if not payload["numba_available"]:
        print("numba unavailable: jit speedup target not checked")


def _assert_jit_target(payload: dict[str, object]) -> None:
    if not payload["numba_available"]:
        return
    for scenario, achieved in payload["speedup_jit_over_numpy"].items():
        assert achieved >= JIT_SPEEDUP_TARGET, (
            f"jit kernel only {achieved:.2f}x faster than numpy on {scenario} "
            f"(target {JIT_SPEEDUP_TARGET}x)"
        )


def _save(payload: dict[str, object]) -> None:
    from conftest import save_bench_json

    path = save_bench_json("kernels", payload)
    print(f"wrote {path}")


def _save_jit(payload: dict[str, object]) -> None:
    from conftest import save_bench_json

    path = save_bench_json("jit", payload)
    print(f"wrote {path}")


def _report(payload: dict[str, object]) -> None:
    print(f"workload: {payload['workload']}")
    for scenario, timings in payload["seconds"].items():
        rendered = ", ".join(f"{k}={v * 1000:.1f}ms" for k, v in timings.items())
        speedup = payload["speedup_numpy_over_purepython"].get(scenario)
        extra = f"  (numpy speedup {speedup:.1f}x)" if speedup else ""
        print(f"{scenario:>24}: {rendered}{extra}")


def _assert_target(payload: dict[str, object]) -> None:
    speedups = payload["speedup_numpy_over_purepython"]
    if not speedups:
        print("numpy unavailable: speedup target not checked")
        return
    achieved = speedups["block_dominance_sweep"]
    assert achieved >= SPEEDUP_TARGET, (
        f"numpy kernel only {achieved:.2f}x faster than pure python on the "
        f"block dominance sweep (target {SPEEDUP_TARGET}x)"
    )


def test_kernel_speedup():
    """Pytest entry point (uses the quick cardinality to stay CI-friendly)."""
    payload = run_benchmark(QUICK_CARDINALITY)
    _save(payload)
    _report(payload)
    _assert_target(payload)


def test_jit_sweep():
    """Pytest entry point for the JIT-tier sweep (quick row count)."""
    payload = run_jit_benchmark(JIT_QUICK_ROWS)
    _save_jit(payload)
    _report_jit(payload)
    _assert_jit_target(payload)


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in arguments
    payload = run_benchmark(QUICK_CARDINALITY if quick else FULL_CARDINALITY)
    _save(payload)
    _report(payload)
    _assert_target(payload)
    jit_payload = run_jit_benchmark(JIT_QUICK_ROWS if quick else JIT_FULL_ROWS)
    _save_jit(jit_payload)
    _report_jit(jit_payload)
    _assert_jit_target(jit_payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
