"""Scale-up benchmark: sharded-executor wall clock vs worker count.

Sweeps the :class:`~repro.parallel.executor.ShardedExecutor` over 1/2/4/8
workers (one shard per worker) on dominance-heavy anticorrelated workloads
of 50k-200k tuples — skylines run into the thousands there, so per-shard
dominance scans, not index construction, dominate the runtime.  Every
configuration's skyline is checked against the single-process sTSS reference,
and the measurements land in ``benchmarks/results/BENCH_parallel_scaleup.json``.

Run under pytest (``pytest benchmarks/bench_parallel_scaleup.py``) or
standalone::

    python benchmarks/bench_parallel_scaleup.py [--quick]

The wall-clock target — >=2x speedup at 4 workers on the 100k-tuple workload —
needs 4 hardware cores to be meaningful; on smaller hosts (CI containers,
this repo's 1-core dev box) the sweep still runs and records honest numbers,
but the speedup assertion is skipped, exactly like ``bench_kernels.py`` skips
its NumPy target when NumPy is absent.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.stss import stss_skyline
from repro.data.workloads import WorkloadSpec
from repro.kernels import get_kernel
from repro.parallel import MERGE_STRATEGIES, ShardedExecutor

#: Acceptance target: >=2x wall-clock speedup at 4 workers vs 1 worker on the
#: 100k-tuple workload — asserted only on hosts with >= 4 CPUs.
SPEEDUP_TARGET = 2.0
TARGET_WORKERS = 4
TARGET_CARDINALITY = 100_000

FULL_CARDINALITIES = (50_000, 100_000, 200_000)
QUICK_CARDINALITIES = (20_000,)
WORKER_COUNTS = (1, 2, 4, 8)


def _build_workload(cardinality: int):
    spec = WorkloadSpec(
        name="bench-parallel-scaleup",
        distribution="anticorrelated",
        cardinality=cardinality,
        num_total_order=3,
        num_partial_order=1,
        dag_height=6,
        dag_density=0.8,
        seed=7,
    )
    return spec.build()


def _sweep_cardinality(cardinality: int) -> dict[str, object]:
    _, dataset = _build_workload(cardinality)

    started = time.perf_counter()
    reference = stss_skyline(dataset)
    single_seconds = time.perf_counter() - started
    reference_ids = sorted(reference.skyline_ids)

    by_workers: dict[str, dict[str, object]] = {}
    for workers in WORKER_COUNTS:
        executor = ShardedExecutor(dataset, workers=workers, num_shards=workers)
        startup_started = time.perf_counter()
        executor.start()
        startup_seconds = time.perf_counter() - startup_started
        try:
            result = executor.query()
            # A/B the cross-shard merge over the same local skylines: the
            # local phase reruns once, then each strategy merges it.
            local_ids = executor.local_phase({})
            merge_strategies: dict[str, dict[str, object]] = {}
            for strategy in MERGE_STRATEGIES:
                merge_started = time.perf_counter()
                merged, batches = executor.merge_phase(local_ids, {}, strategy=strategy)
                merge_strategies[strategy] = {
                    "seconds_merge": time.perf_counter() - merge_started,
                    "batches": batches,
                    "matches_single_process": merged == reference_ids,
                }
        finally:
            executor.close()
        by_workers[str(workers)] = {
            "seconds": result.seconds,
            "seconds_local": result.seconds_local,
            "seconds_merge": result.seconds_merge,
            "merge_strategy": result.merge_strategy,
            "merge_strategies": merge_strategies,
            "startup_seconds": startup_seconds,
            "skyline_size": len(result.skyline_ids),
            "local_skyline_sizes": result.local_skyline_sizes,
            "merge_batches": result.merge_batches,
            "matches_single_process": result.skyline_ids == reference_ids,
        }
        ab = " / ".join(
            f"{strategy} {timings['seconds_merge']:.2f}s"
            for strategy, timings in merge_strategies.items()
        )
        print(
            f"  N={cardinality} workers={workers}: {result.seconds:7.2f}s "
            f"(local {result.seconds_local:.2f}s, merge {result.seconds_merge:.2f}s, "
            f"startup {startup_seconds:.2f}s) skyline={len(result.skyline_ids)} "
            f"[merge A/B: {ab}]",
            flush=True,
        )

    base = by_workers["1"]["seconds"]
    speedups = {
        workers: base / timings["seconds"] if timings["seconds"] else 0.0
        for workers, timings in by_workers.items()
    }
    return {
        "cardinality": cardinality,
        "skyline_size": len(reference_ids),
        "single_process_seconds": single_seconds,
        "workers": by_workers,
        "speedup_vs_1_worker": speedups,
    }


def run_benchmark(cardinalities) -> dict[str, object]:
    sweeps = [_sweep_cardinality(cardinality) for cardinality in cardinalities]
    return {
        "workload": {
            "distribution": "anticorrelated",
            "num_total_order": 3,
            "num_partial_order": 1,
            "dag_height": 6,
            "dag_density": 0.8,
            "worker_counts": list(WORKER_COUNTS),
            "cpu_count": os.cpu_count(),
            "kernel": get_kernel().name,
        },
        "target": {
            "speedup": SPEEDUP_TARGET,
            "workers": TARGET_WORKERS,
            "cardinality": TARGET_CARDINALITY,
        },
        "sweeps": sweeps,
    }


def _save(payload: dict[str, object]) -> None:
    from conftest import save_bench_json

    path = save_bench_json("parallel_scaleup", payload)
    print(f"wrote {path}")


def _assert_targets(payload: dict[str, object]) -> None:
    for sweep in payload["sweeps"]:
        for workers, timings in sweep["workers"].items():
            assert timings["matches_single_process"], (
                f"sharded skyline diverged from single-process sTSS at "
                f"N={sweep['cardinality']}, workers={workers}"
            )
            for strategy, merge in timings["merge_strategies"].items():
                assert merge["matches_single_process"], (
                    f"{strategy} merge diverged from single-process sTSS at "
                    f"N={sweep['cardinality']}, workers={workers}"
                )
    cpu_count = os.cpu_count() or 1
    if cpu_count < TARGET_WORKERS:
        print(
            f"host has {cpu_count} CPU(s): wall-clock scale-up target "
            f"({SPEEDUP_TARGET}x at {TARGET_WORKERS} workers) not checked"
        )
        return
    target_sweep = next(
        (s for s in payload["sweeps"] if s["cardinality"] == TARGET_CARDINALITY), None
    )
    if target_sweep is None:
        print("quick profile: wall-clock scale-up target not checked")
        return
    achieved = target_sweep["speedup_vs_1_worker"][str(TARGET_WORKERS)]
    assert achieved >= SPEEDUP_TARGET, (
        f"only {achieved:.2f}x speedup at {TARGET_WORKERS} workers on "
        f"{TARGET_CARDINALITY} tuples (target {SPEEDUP_TARGET}x)"
    )


def _report(payload: dict[str, object]) -> None:
    print(f"workload: {payload['workload']}")
    for sweep in payload["sweeps"]:
        speedups = ", ".join(
            f"{workers}w={speedup:.2f}x"
            for workers, speedup in sorted(
                sweep["speedup_vs_1_worker"].items(), key=lambda kv: int(kv[0])
            )
        )
        print(
            f"N={sweep['cardinality']}: single-process "
            f"{sweep['single_process_seconds']:.2f}s; speedup vs 1 worker: {speedups}"
        )


def test_parallel_scaleup():
    """Pytest entry point (quick cardinality, correctness always asserted)."""
    payload = run_benchmark(QUICK_CARDINALITIES)
    _save(payload)
    _report(payload)
    _assert_targets(payload)


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    cardinalities = QUICK_CARDINALITIES if "--quick" in arguments else FULL_CARDINALITIES
    payload = run_benchmark(cardinalities)
    _save(payload)
    _report(payload)
    _assert_targets(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
