"""Figure 13: dynamic total time vs dimensionality."""

import pytest

from repro.bench.experiments import dynamic_dimensionality


def test_fig13_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, dynamic_dimensionality, bench_profile)
    save_table(table)
    assert len(table.rows) == 2 * len(bench_profile.dimensionalities)
    # Shape check: with a single PO attribute dTSS clearly beats the rebuild.
    # With two PO attributes at laptop scale the number of per-group R-trees
    # approaches the number of points, which erodes the advantage (the paper
    # notes the same effect for very large numbers of groups), so only the
    # |PO| = 1 rows are asserted.
    for row in table.rows:
        if row["(|TO|,|PO|)"][1] == 1:
            assert row["TSS IOs"] <= row["SDC+ IOs"]
            assert row["speedup"] > 1.0


@pytest.mark.parametrize("dims", [(2, 1), (4, 2)])
@pytest.mark.parametrize("method", ["TSS", "SDC+"])
def test_fig13_extremes(benchmark, bench_profile, dims, method):
    from repro.bench.runner import DynamicRunner

    runner = DynamicRunner(
        bench_profile.dynamic_spec(
            "independent", num_total_order=dims[0], num_partial_order=dims[1]
        )
    )
    partial_orders = runner.query_mapping(1)
    run = benchmark.pedantic(runner.run, args=(method, partial_orders), rounds=1, iterations=1)
    assert run.skyline_size > 0
