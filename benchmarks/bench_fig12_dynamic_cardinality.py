"""Figure 12: dynamic total time vs data set cardinality (dTSS vs rebuilt SDC+)."""

import pytest

from repro.bench.experiments import dynamic_cardinality


def test_fig12_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, dynamic_cardinality, bench_profile)
    save_table(table)
    assert len(table.rows) == 2 * len(bench_profile.cardinalities)
    for row in table.rows:
        # dTSS reuses its per-group indexes: it must always beat the rebuild.
        assert row["TSS IOs"] < row["SDC+ IOs"]
        assert row["speedup"] > 1.0
    # Shape check: the gap grows with cardinality (SDC+ re-reads all the data).
    for distribution in ("independent", "anticorrelated"):
        rows = [r for r in table.rows if r["distribution"] == distribution]
        assert rows[-1]["speedup"] >= rows[0]["speedup"]


@pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
@pytest.mark.parametrize("method", ["TSS", "SDC+"])
def test_fig12_default_setting(benchmark, dynamic_default_runner, distribution, method):
    runner = dynamic_default_runner[distribution]
    partial_orders = runner.query_mapping(1)
    run = benchmark.pedantic(runner.run, args=(method, partial_orders), rounds=3, iterations=1)
    assert run.skyline_size > 0
