"""Figure 9: static total time vs DAG height (PO domain size grows exponentially)."""

import pytest

from repro.bench.experiments import static_dag_height


def test_fig09_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, static_dag_height, bench_profile)
    save_table(table)
    assert len(table.rows) == 2 * len(bench_profile.dag_heights)
    # Shape check: taller DAGs mean larger PO domains and larger skylines.
    for distribution in ("independent", "anticorrelated"):
        rows = [r for r in table.rows if r["distribution"] == distribution]
        assert rows[-1]["skyline"] >= rows[0]["skyline"]


@pytest.mark.parametrize("height", [2, 6])
@pytest.mark.parametrize("method", ["TSS", "SDC+"])
def test_fig09_height_extremes(benchmark, bench_profile, height, method):
    from repro.bench.runner import StaticRunner

    runner = StaticRunner(bench_profile.static_spec("anticorrelated", dag_height=height))
    run = benchmark.pedantic(runner.run, args=(method,), rounds=1, iterations=1)
    assert run.skyline_size > 0
