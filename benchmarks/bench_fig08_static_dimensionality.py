"""Figure 8: static total time vs dimensionality (|TO|, |PO|)."""

import pytest

from repro.bench.experiments import static_dimensionality


def test_fig08_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, static_dimensionality, bench_profile)
    save_table(table)
    assert len(table.rows) == 2 * len(bench_profile.dimensionalities)
    # Shape check: the skyline (and hence the cost) grows with dimensionality.
    independent = [r for r in table.rows if r["distribution"] == "independent"]
    assert independent[-1]["skyline"] >= independent[0]["skyline"]


@pytest.mark.parametrize("dims", [(2, 1), (4, 2)])
@pytest.mark.parametrize("method", ["TSS", "SDC+"])
def test_fig08_extremes(benchmark, bench_profile, dims, method):
    from repro.bench.runner import StaticRunner

    runner = StaticRunner(
        bench_profile.static_spec(
            "independent", num_total_order=dims[0], num_partial_order=dims[1]
        )
    )
    run = benchmark.pedantic(runner.run, args=(method,), rounds=1, iterations=1)
    assert run.skyline_size > 0
