"""Concurrent-client benchmark for the ``repro serve`` query service.

Measures what the per-topology engine locking actually buys: an in-process
:class:`~repro.service.server.QueryService` (real asyncio loop, real TCP
sockets, the same blocking :class:`~repro.service.client.ServiceClient` the
CLI uses) is driven by 1/2/4/8 concurrent clients, each issuing queries over
*distinct* preference-DAG topologies, so no two clients share a
per-``dag_signature`` lock.  Every response is checked against a serial
:class:`~repro.engine.batch.BatchQueryEngine` run over the same workload.

The sweep also records the cross-shard merge A/B — ``sort-merge`` vs
``all-pairs`` wall clock and dominance-check counts over the same local
skylines — and everything lands in
``benchmarks/results/BENCH_service_concurrency.json``.

Run under pytest (``pytest benchmarks/bench_service_concurrency.py``) or
standalone::

    python benchmarks/bench_service_concurrency.py [--quick]

On a single-CPU host the clients interleave on the GIL rather than run in
parallel, so wall-clock speedups are not asserted — the benchmark records
honest numbers plus the overlap evidence (per-query local-phase windows).
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.data.workloads import WorkloadSpec
from repro.engine.batch import BatchQuery, BatchQueryEngine, random_query_preferences
from repro.kernels import get_kernel
from repro.parallel import MERGE_STRATEGIES, ShardedExecutor
from repro.service import QueryService, ServiceClient

class _CheckCounter:
    """Minimal dominance-check counter accepted by the kernel layer."""

    __slots__ = ("dominance_checks",)

    def __init__(self) -> None:
        self.dominance_checks = 0


CLIENT_COUNTS = (1, 2, 4, 8)
QUERIES_PER_CLIENT = 4
NUM_SHARDS = 4

FULL_CARDINALITY = 30_000
QUICK_CARDINALITY = 4_000


def _build_workload(cardinality: int):
    spec = WorkloadSpec(
        name="bench-service-concurrency",
        distribution="anticorrelated",
        cardinality=cardinality,
        num_total_order=3,
        num_partial_order=1,
        dag_height=6,
        dag_density=0.8,
        seed=11,
    )
    return spec.build()


class _ServiceHarness:
    """An in-process service on an ephemeral port, run on a daemon thread."""

    def __init__(self, dataset) -> None:
        self.service = QueryService(dataset, num_shards=NUM_SHARDS, workers=0)
        self._loop = asyncio.new_event_loop()
        self._address: dict[str, object] = {}
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            host, port = await self.service.start("127.0.0.1", 0)
            self._address["host"], self._address["port"] = host, port
            self._started.set()
            await self.service.serve_until_shutdown()
            # Let connection handlers finish their close sequence before the
            # loop is torn down (on < 3.12 wait_closed does not wait for them).
            pending = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            if pending:
                await asyncio.wait(pending, timeout=5)

        self._loop.run_until_complete(main())
        self._loop.close()

    def __enter__(self) -> "_ServiceHarness":
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("benchmark service did not start")
        return self

    @property
    def host(self) -> str:
        return str(self._address["host"])

    @property
    def port(self) -> int:
        return int(self._address["port"])  # type: ignore[arg-type]

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout=30)


def _serial_reference(dataset, seeds) -> dict[int, list[int]]:
    """Every topology's skyline from a serial single-process engine."""
    engine = BatchQueryEngine(dataset)
    return {
        seed: engine.run_query(
            BatchQuery(f"q{seed}", random_query_preferences(dataset.schema, seed))
        ).skyline_ids
        for seed in seeds
    }


def _sweep_clients(dataset, reference: dict[int, list[int]]) -> list[dict[str, object]]:
    seeds = sorted(reference)
    sweeps: list[dict[str, object]] = []
    for clients in CLIENT_COUNTS:
        # Fresh service per point: an empty result cache every time, so each
        # client count evaluates the same amount of real work.
        with _ServiceHarness(dataset) as harness:
            assignments = [seeds[index::clients] for index in range(clients)]
            barrier = threading.Barrier(clients)
            mismatched_seeds: list[int] = []
            latencies: list[float] = []

            def one_client(
                client_seeds,
                *,
                _barrier=barrier,
                _harness=harness,
                _latencies=latencies,
                _mismatched=mismatched_seeds,
            ):
                with ServiceClient(_harness.host, _harness.port, timeout=600) as client:
                    _barrier.wait()
                    for seed in client_seeds:
                        started = time.perf_counter()
                        response = client.query(seed=seed)
                        _latencies.append(time.perf_counter() - started)
                        if response["skyline_ids"] != reference[seed]:
                            _mismatched.append(seed)

            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients) as pool:
                list(pool.map(one_client, assignments))
            wall_seconds = time.perf_counter() - started
            stats = harness.service.stats()
        queries = len(seeds)
        sweeps.append(
            {
                "clients": clients,
                "queries": queries,
                "wall_seconds": wall_seconds,
                "throughput_qps": queries / wall_seconds if wall_seconds else 0.0,
                "latency_mean_seconds": sum(latencies) / len(latencies),
                "latency_max_seconds": max(latencies),
                "queries_evaluated": stats["engine"]["queries_evaluated"],
                "cache_hits": stats["engine"]["cache_hits"],
                "matches_serial_engine": not mismatched_seeds,
            }
        )
        print(
            f"  clients={clients}: {wall_seconds:6.2f}s wall, "
            f"{queries / wall_seconds:6.2f} q/s, "
            f"mean latency {sweeps[-1]['latency_mean_seconds'] * 1000:7.1f} ms",
            flush=True,
        )
    return sweeps


def _merge_ab(dataset, seeds) -> list[dict[str, object]]:
    """A/B the cross-shard merge strategies over the same local skylines."""
    executor = ShardedExecutor(dataset, num_shards=NUM_SHARDS, workers=0)
    rows: list[dict[str, object]] = []
    for seed in list(seeds)[:2]:
        overrides = random_query_preferences(dataset.schema, seed)
        local_ids = executor.local_phase(overrides)
        point: dict[str, object] = {
            "seed": seed,
            "local_skyline_total": sum(len(ids) for ids in local_ids),
        }
        outcomes = {}
        for strategy in MERGE_STRATEGIES:
            counter = _CheckCounter()
            started = time.perf_counter()
            merged, batches = executor.merge_phase(
                local_ids, overrides, counter, strategy=strategy
            )
            seconds = time.perf_counter() - started
            outcomes[strategy] = merged
            point[strategy] = {
                "seconds": seconds,
                "batches": batches,
                "dominance_checks": counter.dominance_checks,
                "skyline_size": len(merged),
            }
        point["strategies_agree"] = outcomes["sort-merge"] == outcomes["all-pairs"]
        rows.append(point)
        print(
            f"  merge A/B seed={seed}: sort-merge "
            f"{point['sort-merge']['seconds'] * 1000:7.1f} ms "
            f"({point['sort-merge']['dominance_checks']} checks) vs all-pairs "
            f"{point['all-pairs']['seconds'] * 1000:7.1f} ms "
            f"({point['all-pairs']['dominance_checks']} checks)",
            flush=True,
        )
    return rows


def run_benchmark(cardinality: int) -> dict[str, object]:
    _, dataset = _build_workload(cardinality)
    seeds = list(range(100, 100 + max(CLIENT_COUNTS) * QUERIES_PER_CLIENT))
    reference = _serial_reference(dataset, seeds)
    return {
        "workload": {
            "distribution": "anticorrelated",
            "cardinality": cardinality,
            "num_total_order": 3,
            "num_partial_order": 1,
            "num_shards": NUM_SHARDS,
            "client_counts": list(CLIENT_COUNTS),
            "queries_per_sweep": len(seeds),
            "cpu_count": os.cpu_count(),
            "kernel": get_kernel().name,
        },
        "sweeps": _sweep_clients(dataset, reference),
        "merge_ab": _merge_ab(dataset, seeds),
    }


def _save(payload: dict[str, object]) -> None:
    from conftest import save_bench_json

    path = save_bench_json("service_concurrency", payload)
    print(f"wrote {path}")


def _assert_targets(payload: dict[str, object]) -> None:
    for sweep in payload["sweeps"]:
        assert sweep["matches_serial_engine"], (
            f"concurrent responses diverged from the serial engine at "
            f"{sweep['clients']} clients"
        )
        # Distinct topologies and a fresh cache per point: every query is a
        # real evaluation, so the concurrency is not a cache artifact.
        assert sweep["queries_evaluated"] == sweep["queries"], sweep
    for point in payload["merge_ab"]:
        assert point["strategies_agree"], f"merge strategies disagree: {point}"


def test_service_concurrency():
    """Pytest entry point (quick cardinality, correctness always asserted)."""
    payload = run_benchmark(QUICK_CARDINALITY)
    _save(payload)
    _assert_targets(payload)


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    cardinality = QUICK_CARDINALITY if "--quick" in arguments else FULL_CARDINALITY
    payload = run_benchmark(cardinality)
    _save(payload)
    _assert_targets(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
