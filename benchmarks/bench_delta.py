"""Delta-plane benchmark: applying a live mutation batch vs a full rebuild.

Measures, from an already-open engine over a packed store, the time to make
a 1% mutation batch (half inserts, half deletes) queryable on two paths:

``delta``
    The delta plane — ``engine.insert`` / ``engine.delete`` append encoded
    rows and tombstones to the in-memory delta and the crash-safe sidecar
    log; the base frame, prefilter artifacts and packed index are untouched.
``rebuild``
    The conventional path — materialize the mutated record list, rebuild
    the :class:`Dataset`, re-encode, re-pack the store and re-open the
    engine (re-prefilter, re-bulk-load).

Both paths then answer the base query; the delta path's *stable* ids must
match the rebuild's ids (remapped through the surviving-row order).  The
delta child additionally measures query latency right before and right
after folding the batch (``engine.compact``) — the read-side price of the
unmerged delta, and proof that compaction leaves answers bit-identical.

Each configuration runs REPEATS times in fresh subprocesses (best run
scored); the packed store and the mutation batch are written by the parent
outside the measured window.  Results land in
``benchmarks/results/BENCH_delta.json``.

Run under pytest (``pytest benchmarks/bench_delta.py``) or standalone::

    python benchmarks/bench_delta.py [--quick]
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: Acceptance target: applying the mutation batch through the delta plane is
#: >=5x faster than re-encoding and re-packing the mutated dataset.
SPEEDUP_TARGET = 5.0
TARGET_CARDINALITY = 100_000

FULL_CARDINALITIES = (50_000, 100_000, 200_000)
QUICK_CARDINALITIES = (20_000,)
MODES = ("delta", "rebuild")
#: Child runs per configuration; the best (min apply time) is scored.
REPEATS = 3
#: Mutation batch size as a fraction of the cardinality (half inserts,
#: half deletes).
MUTATION_FRACTION = 0.01

WORKLOAD = {
    "distribution": "anticorrelated",
    "num_total_order": 2,
    "num_partial_order": 1,
    "dag_height": 6,
    "dag_density": 0.8,
    "seed": 7,
}


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _build_batch(schema, cardinality: int) -> dict[str, object]:
    """The 1% mutation batch, deterministic for a given cardinality."""
    rng = random.Random(cardinality * 13 + 1)
    count = max(1, int(cardinality * MUTATION_FRACTION / 2))
    dags = [attribute.dag for attribute in schema.partial_order_attributes]
    inserts = [
        [rng.uniform(0.0, 1.0) for _ in range(schema.num_total_order)]
        + [rng.choice(dag.values) for dag in dags]
        for _ in range(count)
    ]
    deletes = sorted(rng.sample(range(cardinality), count))
    return {"inserts": inserts, "deletes": deletes}


def _checksum(ids) -> int:
    return hash(tuple(sorted(ids))) & 0xFFFFFFFF


def _child_measure(mode: str, store_path: str, batch_path: str) -> dict[str, object]:
    """Apply the batch on one path, measured inside this (fresh) process."""
    import shutil

    from repro.engine.batch import BatchQuery, BatchQueryEngine

    # Mutations (and the compaction) must not leak into the next repeat:
    # work on a private copy of the packed store, outside the timed window.
    scratch = tempfile.mkdtemp(prefix="bench-delta-child-")
    private = os.path.join(scratch, os.path.basename(store_path))
    shutil.copyfile(store_path, private)
    store_path = private

    with open(batch_path) as handle:
        batch = json.load(handle)
    inserts = [tuple(row) for row in batch["inserts"]]
    deletes = [int(record_id) for record_id in batch["deletes"]]
    timings: dict[str, object] = {"mode": mode}

    if mode == "delta":
        engine = BatchQueryEngine(store_path, compact_threshold=0)
        started = time.perf_counter()
        new_ids = engine.insert(inserts)
        engine.delete(deletes)
        timings["apply_seconds"] = time.perf_counter() - started

        started = time.perf_counter()
        before = engine.run_query(BatchQuery("pre-compaction"))
        timings["query_before_compaction_seconds"] = time.perf_counter() - started

        started = time.perf_counter()
        engine.compact()
        timings["compact_seconds"] = time.perf_counter() - started

        started = time.perf_counter()
        after = engine.run_query(BatchQuery("post-compaction"))
        timings["query_after_compaction_seconds"] = time.perf_counter() - started

        assert before.skyline_ids == after.skyline_ids, (
            "compaction changed the skyline"
        )
        assert not after.from_cache
        skyline_ids = after.skyline_ids
        timings["new_ids_head"] = new_ids[:8]
    else:
        from repro.api import pack
        from repro.data.dataset import Dataset

        base = BatchQueryEngine(store_path, use_frame=False)
        records = {record.id: record.values for record in base.dataset.records}
        base.close()
        started = time.perf_counter()
        for record_id in deletes:
            del records[record_id]
        next_id = max(records) + 1
        for offset, row in enumerate(inserts):
            records[next_id + offset] = row
        ordered_ids = sorted(records)
        dataset = Dataset(base.schema, [records[i] for i in ordered_ids])
        repacked = store_path + ".rebuild.rpro"
        pack(dataset, repacked)
        engine = BatchQueryEngine(repacked)
        timings["apply_seconds"] = time.perf_counter() - started

        started = time.perf_counter()
        result = engine.run_query(BatchQuery("base"))
        timings["query_after_compaction_seconds"] = time.perf_counter() - started
        # Remap fresh positions back to stable ids for the cross-path check.
        skyline_ids = sorted(ordered_ids[p] for p in result.skyline_ids)

    timings["skyline_size"] = len(skyline_ids)
    timings["skyline_checksum"] = _checksum(skyline_ids)
    return timings


def _run_child(mode: str, store_path: Path, batch_path: Path) -> dict[str, object]:
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir():
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else str(src)
    runs = []
    for _ in range(REPEATS):
        process = subprocess.run(
            [sys.executable, __file__, "--child", mode, str(store_path), str(batch_path)],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        if process.returncode != 0:
            raise RuntimeError(f"child run ({mode}) failed:\n{process.stderr}")
        runs.append(json.loads(process.stdout.splitlines()[-1]))
    best = min(runs, key=lambda run: run["apply_seconds"])
    best["runs"] = len(runs)
    return best


def _sweep_cardinality(cardinality: int, scratch: Path) -> dict[str, object]:
    from repro.api import pack
    from repro.data.workloads import WorkloadSpec

    spec = WorkloadSpec(name="bench-delta", cardinality=cardinality, **WORKLOAD)
    schema, dataset = spec.build()
    store_path = scratch / f"bench_{cardinality}.rpro"
    pack(dataset, store_path)
    batch = _build_batch(schema, cardinality)
    batch_path = scratch / f"batch_{cardinality}.json"
    batch_path.write_text(json.dumps(batch))
    del dataset

    by_mode = {mode: _run_child(mode, store_path, batch_path) for mode in MODES}
    delta_run, rebuild_run = by_mode["delta"], by_mode["rebuild"]
    speedup = (
        rebuild_run["apply_seconds"] / delta_run["apply_seconds"]
        if delta_run["apply_seconds"]
        else 0.0
    )
    for mode in MODES:
        timings = by_mode[mode]
        print(
            f"  N={cardinality} {mode:>7}: apply {timings['apply_seconds']:6.3f}s, "
            f"query {timings['query_after_compaction_seconds']:6.3f}s",
            flush=True,
        )
    print(f"  N={cardinality} delta-apply speedup: {speedup:.2f}x", flush=True)
    return {
        "cardinality": cardinality,
        "mutations": len(batch["inserts"]) + len(batch["deletes"]),
        "modes": by_mode,
        "delta_apply_speedup": speedup,
        "query_overhead_before_compaction": (
            delta_run["query_before_compaction_seconds"]
            / delta_run["query_after_compaction_seconds"]
            if delta_run["query_after_compaction_seconds"]
            else 0.0
        ),
        "skylines_match": (
            delta_run["skyline_size"] == rebuild_run["skyline_size"]
            and delta_run["skyline_checksum"] == rebuild_run["skyline_checksum"]
        ),
    }


def run_benchmark(cardinalities) -> dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="bench-delta-") as scratch:
        sweeps = [
            _sweep_cardinality(cardinality, Path(scratch))
            for cardinality in cardinalities
        ]
    return {
        "workload": {
            **WORKLOAD,
            "mutation_fraction": MUTATION_FRACTION,
            "numpy_available": _numpy_available(),
        },
        "target": {
            "delta_apply_speedup": SPEEDUP_TARGET,
            "cardinality": TARGET_CARDINALITY,
        },
        "sweeps": sweeps,
    }


def _save(payload: dict[str, object]) -> None:
    from conftest import save_bench_json

    path = save_bench_json("delta", payload)
    print(f"wrote {path}")


def _assert_targets(payload: dict[str, object]) -> None:
    for sweep in payload["sweeps"]:
        assert sweep["skylines_match"], (
            f"delta and rebuild paths disagree at N={sweep['cardinality']}"
        )
    target_sweep = next(
        (s for s in payload["sweeps"] if s["cardinality"] == TARGET_CARDINALITY), None
    )
    if target_sweep is None:
        print("quick profile: delta-apply target not checked")
        return
    achieved = target_sweep["delta_apply_speedup"]
    assert achieved >= SPEEDUP_TARGET, (
        f"only {achieved:.2f}x delta-apply speedup at {TARGET_CARDINALITY} "
        f"tuples (target {SPEEDUP_TARGET}x)"
    )


def _report(payload: dict[str, object]) -> None:
    for sweep in payload["sweeps"]:
        print(
            f"N={sweep['cardinality']}: {sweep['mutations']} mutations applied "
            f"{sweep['delta_apply_speedup']:.2f}x faster through the delta "
            f"plane; unmerged-delta query overhead "
            f"{sweep['query_overhead_before_compaction']:.2f}x"
        )


def test_delta_apply():
    """Pytest entry point (quick cardinality, correctness always asserted)."""
    payload = run_benchmark(QUICK_CARDINALITIES)
    _save(payload)
    _report(payload)
    _assert_targets(payload)


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "--child":
        print(json.dumps(_child_measure(arguments[1], arguments[2], arguments[3])))
        return 0
    cardinalities = QUICK_CARDINALITIES if "--quick" in arguments else FULL_CARDINALITIES
    payload = run_benchmark(cardinalities)
    _save(payload)
    _report(payload)
    _assert_targets(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
