"""Figure 10: static total time vs DAG density (denser DAGs hurt the baselines more)."""

import pytest

from repro.bench.experiments import static_dag_density


def test_fig10_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, static_dag_density, bench_profile)
    save_table(table)
    assert len(table.rows) == 2 * len(bench_profile.dag_densities)
    assert all(row["skyline"] > 0 for row in table.rows)


@pytest.mark.parametrize("density", [0.2, 1.0])
@pytest.mark.parametrize("method", ["TSS", "SDC+"])
def test_fig10_density_extremes(benchmark, bench_profile, density, method):
    from repro.bench.runner import StaticRunner

    runner = StaticRunner(bench_profile.static_spec("anticorrelated", dag_density=density))
    run = benchmark.pedantic(runner.run, args=(method,), rounds=1, iterations=1)
    assert run.skyline_size > 0
