"""Corruption tests: damaged store files fail loudly with a typed StoreError.

A corrupt store must never crash with a raw OSError/struct.error and — worse —
never load into a silently wrong answer.  Every failure mode names the store
path, and the format-sensitive ones name the format version this build reads.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.data.workloads import WorkloadSpec
from repro.exceptions import StoreError
from repro.store import FORMAT_VERSION, MAGIC, DatasetStore, pack_dataset


@pytest.fixture(scope="module")
def packed_bytes(tmp_path_factory):
    spec = WorkloadSpec(
        name="store-corruption",
        cardinality=80,
        num_total_order=2,
        num_partial_order=1,
        dag_height=3,
        dag_density=0.8,
        to_domain_size=20,
        seed=2,
    )
    _, dataset = spec.build()
    path = tmp_path_factory.mktemp("store") / "intact.rpro"
    pack_dataset(dataset, path)
    return path.read_bytes()


@pytest.fixture
def damaged(tmp_path):
    """Write a damaged variant and return its path."""

    def write(payload: bytes):
        path = tmp_path / "damaged.rpro"
        path.write_bytes(payload)
        return path

    return write


def _header(payload: bytes) -> dict:
    (length,) = struct.unpack("<Q", payload[len(MAGIC) : len(MAGIC) + 8])
    return json.loads(payload[len(MAGIC) + 8 : len(MAGIC) + 8 + length])


class TestOpenRejectsDamage:
    def test_missing_file(self, tmp_path):
        path = tmp_path / "nope.rpro"
        with pytest.raises(StoreError, match=str(path)):
            DatasetStore.open(path)

    def test_bad_magic(self, packed_bytes, damaged):
        path = damaged(b"NOTSTORE" + packed_bytes[len(MAGIC) :])
        with pytest.raises(StoreError, match="bad magic"):
            DatasetStore.open(path)

    def test_empty_file(self, damaged):
        with pytest.raises(StoreError, match="bad magic"):
            DatasetStore.open(damaged(b""))

    @pytest.mark.parametrize("keep", [12, 100, 4096])
    def test_truncated_file(self, packed_bytes, damaged, keep):
        path = damaged(packed_bytes[:keep])
        with pytest.raises(StoreError, match="truncat|corrupt|magic"):
            DatasetStore.open(path)

    def test_truncated_mid_sections(self, packed_bytes, damaged):
        # Keep the header intact but drop the tail of the section area.
        path = damaged(packed_bytes[: len(packed_bytes) - 4096])
        with pytest.raises(StoreError, match="truncated|checksum"):
            DatasetStore.open(path)

    def test_flipped_section_byte_fails_checksum(self, packed_bytes, damaged):
        header = _header(packed_bytes)
        spec = header["sections"]["frame_to"]
        position = spec["offset"] + spec["nbytes"] // 2
        mutated = bytearray(packed_bytes)
        mutated[position] ^= 0xFF
        path = damaged(bytes(mutated))
        with pytest.raises(StoreError, match="checksum"):
            DatasetStore.open(path)

    def test_wrong_format_version(self, packed_bytes, damaged):
        needle = b'"format_version":%d' % FORMAT_VERSION
        assert needle in packed_bytes
        path = damaged(packed_bytes.replace(needle, b'"format_version":9', 1))
        with pytest.raises(StoreError) as excinfo:
            DatasetStore.open(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert f"format version {FORMAT_VERSION}" in message  # what we *read*
        assert "re-pack" in message

    def test_corrupt_header_json(self, packed_bytes, damaged):
        mutated = bytearray(packed_bytes)
        mutated[len(MAGIC) + 8] = ord("?")  # clobber the header's first byte
        path = damaged(bytes(mutated))
        with pytest.raises(StoreError, match="corrupt header"):
            DatasetStore.open(path)

    def test_header_length_past_eof(self, packed_bytes, damaged):
        mutated = bytearray(packed_bytes)
        mutated[len(MAGIC) : len(MAGIC) + 8] = struct.pack("<Q", 1 << 40)
        path = damaged(bytes(mutated))
        with pytest.raises(StoreError, match="truncated"):
            DatasetStore.open(path)

    def test_skipping_verification_defers_not_hides(self, packed_bytes, damaged):
        """verify=False skips the checksum pass but structural damage still
        fails at open, and the engine path (verify on) always re-checks."""
        header = _header(packed_bytes)
        spec = header["sections"]["frame_to"]
        mutated = bytearray(packed_bytes)
        mutated[spec["offset"]] ^= 0xFF
        path = damaged(bytes(mutated))
        DatasetStore.open(path, verify=False)  # workers trust the parent
        with pytest.raises(StoreError, match="checksum"):
            DatasetStore.open(path)

    def test_engine_surfaces_store_error(self, packed_bytes, damaged):
        from repro.engine.batch import BatchQueryEngine

        path = damaged(packed_bytes[:100])
        with pytest.raises(StoreError, match=str(path)):
            BatchQueryEngine(path)

    def test_facade_surfaces_store_error(self, packed_bytes, damaged):
        import repro

        path = damaged(b"NOTSTORE" + packed_bytes[len(MAGIC) :])
        with pytest.raises(StoreError, match="bad magic"):
            repro.open_dataset(path)
