"""Round-trip property tests for the storage plane.

The contract under test: ``pack_dataset`` followed by ``DatasetStore.open``
(mmap or load) reconstructs *exactly* the artifacts the engine would have
built from the records — same encoded columns, same prefilter survivors, and
query results that are identical to the in-memory path down to the discovery
order and the dominance-check counts, across both kernels, frame on/off and
1–4 shards.
"""

from __future__ import annotations

import pytest

from repro.data.workloads import WorkloadSpec
from repro.engine.batch import BatchQuery, BatchQueryEngine, queries_from_seeds
from repro.kernels import available_kernels
from repro.store import DatasetStore, pack_dataset

np = pytest.importorskip("numpy", reason="store round-trip baseline uses numpy")


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        name="store-roundtrip",
        cardinality=250,
        num_total_order=2,
        num_partial_order=2,
        dag_height=4,
        dag_density=0.8,
        to_domain_size=40,
        seed=13,
    )
    return spec.build()


@pytest.fixture(scope="module")
def packed(workload, tmp_path_factory):
    _, dataset = workload
    path = tmp_path_factory.mktemp("store") / "roundtrip.rpro"
    summary = pack_dataset(dataset, path)
    return path, summary


def _queries(schema):
    return [BatchQuery("base")] + queries_from_seeds(schema, range(20, 24))


def _run(engine, schema):
    """(name, skyline ids in discovery order, dominance checks) per query."""
    rows = []
    with engine:
        for result in engine.run(_queries(schema)):
            checks = result.stats.dominance_checks if result.stats else None
            rows.append((result.name, list(result.skyline_ids), checks))
    return rows


class TestBitwiseRoundTrip:
    def test_frame_arrays_survive_packing(self, workload, packed):
        from repro.data.columns import EncodedFrame

        _, dataset = workload
        path, _ = packed
        fresh = EncodedFrame.from_dataset(dataset)
        store = DatasetStore.open(path)
        mapped = store.frame()
        assert np.array_equal(mapped.to, fresh.to)
        assert np.array_equal(mapped.codes, fresh.codes)

    def test_survivors_match_engine_prefilter(self, workload, packed):
        _, dataset = workload
        path, summary = packed
        with BatchQueryEngine(dataset) as engine:
            reference = engine._candidate_ids
        store = DatasetStore.open(path)
        assert store.survivors() == list(reference)
        assert summary["survivors"] == len(reference)

    def test_materialized_dataset_equals_original(self, workload, packed):
        schema, dataset = workload
        path, _ = packed
        restored = DatasetStore.open(path).dataset()
        assert len(restored) == len(dataset)
        for original, loaded in zip(dataset, restored):
            assert original.values == loaded.values

    @pytest.mark.parametrize("kernel_name", available_kernels())
    @pytest.mark.parametrize("mmap", [True, False])
    def test_results_identical_to_in_memory(self, workload, packed, kernel_name, mmap):
        schema, dataset = workload
        path, _ = packed
        reference = _run(BatchQueryEngine(dataset, kernel=kernel_name), schema)
        via_store = _run(
            BatchQueryEngine(path, kernel=kernel_name, mmap=mmap), schema
        )
        assert via_store == reference  # ids, discovery order AND check counts

    @pytest.mark.parametrize("use_frame", [True, False])
    def test_frame_toggle_preserves_results(self, workload, packed, use_frame):
        schema, dataset = workload
        path, _ = packed
        reference = _run(BatchQueryEngine(dataset, use_frame=use_frame), schema)
        via_store = _run(BatchQueryEngine(path, use_frame=use_frame), schema)
        assert [(n, sorted(ids)) for n, ids, _ in via_store] == [
            (n, sorted(ids)) for n, ids, _ in reference
        ]

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4])
    def test_sharded_store_engine_matches_in_memory(self, workload, packed, num_shards):
        schema, dataset = workload
        path, _ = packed
        reference = _run(
            BatchQueryEngine(dataset, workers=0, num_shards=num_shards), schema
        )
        via_store = _run(
            BatchQueryEngine(path, workers=0, num_shards=num_shards), schema
        )
        assert [(n, ids) for n, ids, _ in via_store] == [
            (n, ids) for n, ids, _ in reference
        ]

    def test_pooled_workers_map_the_store_file(self, workload, packed):
        schema, dataset = workload
        path, _ = packed
        reference = _run(BatchQueryEngine(dataset), schema)
        via_store = _run(BatchQueryEngine(path, workers=2, num_shards=2), schema)
        assert [(n, sorted(ids)) for n, ids, _ in via_store] == [
            (n, sorted(ids)) for n, ids, _ in reference
        ]

    def test_prefilter_off_still_loads_from_store(self, workload, packed):
        schema, dataset = workload
        path, _ = packed
        reference = _run(BatchQueryEngine(dataset, prefilter=False), schema)
        via_store = _run(BatchQueryEngine(path, prefilter=False), schema)
        assert via_store == reference


class TestStoreFacts:
    def test_describe_reports_layout(self, packed):
        path, summary = packed
        store = DatasetStore.open(path)
        facts = store.describe()
        assert facts["format_version"] == 1
        assert facts["rows"] == summary["rows"]
        assert set(summary["sections"]) == set(facts["sections"])

    def test_mmap_flag_is_honoured(self, packed):
        path, _ = packed
        assert DatasetStore.open(path, mmap=True).uses_mmap is True
        assert DatasetStore.open(path, mmap=False).uses_mmap is False

    def test_base_artifacts_reused_without_rebuild(self, workload, packed):
        """The packed base mapping/tree answer the base query verbatim."""
        schema, dataset = workload
        path, _ = packed
        with BatchQueryEngine(dataset) as engine:
            reference = engine.run_query(BatchQuery("base"))
        with BatchQueryEngine(path) as engine:
            assert engine._store_base_usable
            result = engine.run_query(BatchQuery("base"))
            assert engine._base_artifacts is not None  # served from the file
        assert result.skyline_ids == reference.skyline_ids
        assert result.stats.dominance_checks == reference.stats.dominance_checks
