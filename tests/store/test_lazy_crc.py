"""Lazy per-section CRC: corruption is caught on first touch, not at open.

``crc="eager"`` (the default) verifies every section checksum inside
:meth:`DatasetStore.open` — the safest mode, but the whole file is read
before the first query.  ``crc="lazy"`` defers each section's checksum to
its first touch: cold start skips the CRC pass, yet no corrupt byte is ever
*served* — the touch fails with the same typed :class:`StoreError` the
eager pass would have raised.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.config import resolve_crc_mode
from repro.data.workloads import WorkloadSpec
from repro.exceptions import ExperimentError, StoreError
from repro.store import MAGIC, DatasetStore, pack_dataset


@pytest.fixture(scope="module")
def packed_bytes(tmp_path_factory):
    spec = WorkloadSpec(
        name="lazy-crc",
        cardinality=80,
        num_total_order=2,
        num_partial_order=1,
        dag_height=3,
        dag_density=0.8,
        to_domain_size=20,
        seed=4,
    )
    _, dataset = spec.build()
    path = tmp_path_factory.mktemp("store") / "intact.rpro"
    pack_dataset(dataset, path)
    return path.read_bytes()


def _header(payload: bytes) -> dict:
    (length,) = struct.unpack("<Q", payload[len(MAGIC) : len(MAGIC) + 8])
    return json.loads(payload[len(MAGIC) + 8 : len(MAGIC) + 8 + length])


@pytest.fixture
def corrupted(tmp_path, packed_bytes):
    """Flip one byte in the middle of a named section; returns the path."""

    def write(section: str):
        spec = _header(packed_bytes)["sections"][section]
        mutated = bytearray(packed_bytes)
        mutated[spec["offset"] + spec["nbytes"] // 2] ^= 0xFF
        path = tmp_path / "damaged.rpro"
        path.write_bytes(bytes(mutated))
        return path

    return write


@pytest.mark.parametrize("mmap_mode", [True, False], ids=["mmap", "load"])
class TestLazyDefersToFirstTouch:
    def test_eager_fails_at_open_lazy_at_first_touch(self, corrupted, mmap_mode):
        path = corrupted("frame_to")
        with pytest.raises(StoreError, match="checksum"):
            DatasetStore.open(path, mmap=mmap_mode, crc="eager")
        store = DatasetStore.open(path, mmap=mmap_mode, crc="lazy")
        assert store.crc_mode == "lazy"
        with pytest.raises(StoreError, match="frame_to"):
            store.frame()

    def test_untouched_corruption_does_not_block_other_sections(
        self, corrupted, mmap_mode
    ):
        # Damage the survivor ids; the frame itself still reads.
        path = corrupted("survivors")
        store = DatasetStore.open(path, mmap=mmap_mode, crc="lazy")
        frame = store.frame()
        assert len(frame) == store.num_rows

    def test_clean_store_touches_verify_once_then_serve(
        self, tmp_path, packed_bytes, mmap_mode
    ):
        path = tmp_path / "intact.rpro"
        path.write_bytes(packed_bytes)
        store = DatasetStore.open(path, mmap=mmap_mode, crc="lazy")
        first = store.frame()
        second = store.frame()
        assert len(first) == len(second) == store.num_rows
        assert "frame_to" in store._verified

    def test_engine_query_over_corrupt_section_fails_loudly(
        self, corrupted, mmap_mode
    ):
        from repro.engine.batch import BatchQuery, BatchQueryEngine

        path = corrupted("frame_to")
        with (
            pytest.raises(StoreError, match="checksum"),
            BatchQueryEngine(path, mmap=mmap_mode, crc="lazy") as engine,
        ):
            engine.run_query(BatchQuery("base"))


class TestCrcModeResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRC", "lazy")
        assert resolve_crc_mode("eager") == "eager"

    def test_environment_variable_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRC", "LAZY")
        assert resolve_crc_mode() == "lazy"
        monkeypatch.delenv("REPRO_CRC")
        assert resolve_crc_mode() == "eager"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExperimentError, match="eager"):
            resolve_crc_mode("sometimes")

    def test_runtime_config_carries_crc(self):
        from repro.api import RuntimeConfig

        assert RuntimeConfig.resolve(crc="lazy").crc == "lazy"
        assert RuntimeConfig.resolve().crc == "eager"
        assert "crc" in RuntimeConfig.resolve(crc="lazy").engine_options()
        with pytest.raises(ExperimentError):
            RuntimeConfig.resolve(crc="nope")
