"""The public facade: repro.open_dataset / repro.pack over every source kind."""

from __future__ import annotations

import pytest

import repro
from repro.config import STORE_ENV_VAR, RuntimeConfig
from repro.engine.batch import BatchQueryEngine
from repro.exceptions import ExperimentError


@pytest.fixture(scope="module")
def workload():
    from repro.data.workloads import WorkloadSpec

    spec = WorkloadSpec(
        name="api-facade",
        cardinality=150,
        num_total_order=2,
        num_partial_order=1,
        dag_height=3,
        dag_density=0.8,
        to_domain_size=25,
        seed=4,
    )
    return spec.build()


@pytest.fixture(scope="module")
def store_path(workload, tmp_path_factory):
    _, dataset = workload
    path = tmp_path_factory.mktemp("api") / "facade.rpro"
    repro.pack(dataset, path)
    return path


def _base_ids(engine):
    with engine:
        return engine.run_query(repro.BatchQuery("base")).skyline_ids


class TestOpenDataset:
    def test_accepts_dataset(self, workload):
        _, dataset = workload
        engine = repro.open_dataset(dataset)
        assert isinstance(engine, BatchQueryEngine)
        assert _base_ids(engine)

    def test_accepts_path_and_matches_dataset(self, workload, store_path):
        _, dataset = workload
        assert _base_ids(repro.open_dataset(store_path)) == _base_ids(
            repro.open_dataset(dataset)
        )

    def test_accepts_open_store(self, workload, store_path):
        _, dataset = workload
        store = repro.DatasetStore.open(store_path)
        assert _base_ids(repro.open_dataset(store)) == _base_ids(
            repro.open_dataset(dataset)
        )

    def test_no_source_uses_env_store(self, store_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(store_path))
        engine = repro.open_dataset()
        assert engine.store is not None
        assert engine.store.path == str(store_path)
        engine.close()

    def test_no_source_and_no_store_is_an_error(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        with pytest.raises(ExperimentError, match="REPRO_STORE"):
            repro.open_dataset()

    def test_config_and_overrides_reach_the_engine(self, store_path):
        config = RuntimeConfig.resolve(shards=2, mmap=False)
        engine = repro.open_dataset(store_path, config=config, workers=0)
        with engine:
            assert engine.store.uses_mmap is False
            assert engine.executor is not None
            assert engine.executor.num_shards == 2

    def test_exported_from_package_root(self):
        for name in ("open_dataset", "pack", "RuntimeConfig", "DatasetStore",
                     "StoreError", "pack_dataset"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None


class TestPack:
    def test_pack_reports_layout(self, workload, tmp_path):
        _, dataset = workload
        summary = repro.pack(dataset, tmp_path / "p.rpro", max_entries=8)
        assert summary["rows"] == len(dataset)
        assert summary["base"]["max_entries"] == 8
        assert (tmp_path / "p.rpro").stat().st_size == summary["bytes"]

    def test_pack_honours_config_kernel(self, workload, tmp_path):
        _, dataset = workload
        config = RuntimeConfig.resolve(kernel="purepython")
        summary = repro.pack(dataset, tmp_path / "pp.rpro", config=config)
        ids = _base_ids(repro.open_dataset(tmp_path / "pp.rpro"))
        assert summary["survivors"] >= len(ids) > 0
