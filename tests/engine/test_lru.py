"""Unit and regression tests for the bounded LRU mapping.

The regression that motivates the sentinel-based lookup: a cached *falsy*
value (``None``, an empty skyline list) must be distinguishable from a miss,
otherwise a long-running service recomputes an empty result on every request
— or worse, double-counts evaluations — forever.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.batch import BatchQuery, BatchQueryEngine
from repro.engine.lru import LRUDict
from repro.exceptions import QueryError


class TestLookupSemantics:
    def test_stored_none_is_not_a_miss(self):
        cache = LRUDict(4)
        cache["k"] = None
        miss = object()
        assert cache.get("k", miss) is None
        assert cache.get("absent", miss) is miss
        assert "k" in cache

    def test_stored_empty_list_is_not_a_miss(self):
        cache = LRUDict(4)
        cache["empty"] = []
        miss = object()
        assert cache.get("empty", miss) == []
        assert cache.get("empty", miss) is not miss

    def test_getitem_raises_on_miss_and_refreshes_on_hit(self):
        cache = LRUDict(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache["a"] == 1  # refreshes 'a'
        cache["c"] = 3  # evicts 'b', the least recently used
        assert "a" in cache and "c" in cache and "b" not in cache
        with pytest.raises(KeyError):
            cache["b"]

    def test_pop(self):
        cache = LRUDict(4)
        cache["a"] = None
        assert cache.pop("a") is None
        assert "a" not in cache
        assert cache.pop("a", "fallback") == "fallback"
        with pytest.raises(KeyError):
            cache.pop("a")

    def test_setdefault_keeps_the_first_value(self):
        cache = LRUDict(4)
        first = cache.setdefault("k", "one")
        second = cache.setdefault("k", "two")
        assert first == "one" and second == "one"

    def test_eviction_counting_unchanged(self):
        cache = LRUDict(2)
        for index in range(5):
            cache[index] = index
        assert len(cache) == 2
        assert cache.evictions == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(QueryError):
            LRUDict(0)


class TestThreadSafety:
    def test_concurrent_mixed_operations_do_not_corrupt(self):
        cache: LRUDict[int, int] = LRUDict(32)
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            try:
                for step in range(2000):
                    key = (seed * 31 + step) % 100
                    cache[key] = step
                    cache.get((key + 1) % 100)
                    if step % 7 == 0:
                        cache.pop(key, None)
                    len(cache)
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= cache.capacity


class TestEmptySkylineCachingRegression:
    def test_engine_serves_cached_empty_result(self, small_workload):
        """An empty skyline (empty dataset) must hit the cache, not recompute."""
        _, dataset = small_workload
        engine = BatchQueryEngine(dataset.subset([]))
        first = engine.run_query(BatchQuery("base"))
        second = engine.run_query(BatchQuery("base"))
        assert first.skyline_ids == [] and not first.from_cache
        assert second.skyline_ids == [] and second.from_cache
        assert engine.queries_evaluated == 1
        assert engine.cache_hits == 1
