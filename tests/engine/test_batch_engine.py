"""Regression tests: BatchQueryEngine results equal per-query STSS."""

from __future__ import annotations

import pytest

from repro.core.stss import stss_skyline
from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.data.workloads import WorkloadSpec
from repro.engine.batch import (
    BatchQuery,
    BatchQueryEngine,
    dag_signature,
    queries_from_seeds,
    random_query_preferences,
)
from repro.exceptions import QueryError
from repro.kernels import available_kernels
from repro.order.builders import chain, paper_example_dag
from repro.skyline.bruteforce import brute_force_skyline


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        name="batch-test",
        cardinality=300,
        num_total_order=2,
        num_partial_order=2,
        dag_height=4,
        dag_density=0.8,
        to_domain_size=40,
        seed=5,
    )
    return spec.build()


class TestAgainstPerQuerySTSS:
    @pytest.mark.parametrize("kernel_name", available_kernels())
    def test_matches_per_query_stss_on_full_dataset(self, workload, kernel_name):
        schema, dataset = workload
        engine = BatchQueryEngine(dataset, kernel=kernel_name)
        queries = [BatchQuery("base")] + queries_from_seeds(schema, [1, 2, 3])
        for result in engine.run(queries):
            if result.name == "base":
                reference = stss_skyline(dataset)
            else:
                overrides = random_query_preferences(schema, int(result.name[1:]))
                reference = stss_skyline(
                    dataset.with_schema(schema.replace_partial_order(overrides))
                )
            assert sorted(result.skyline_ids) == sorted(reference.skyline_ids)

    def test_prefilter_disabled_gives_same_results(self, workload):
        schema, dataset = workload
        with_filter = BatchQueryEngine(dataset, prefilter=True)
        without_filter = BatchQueryEngine(dataset, prefilter=False)
        queries = queries_from_seeds(schema, [4, 5])
        for a, b in zip(with_filter.run(queries), without_filter.run(queries)):
            assert a.skyline_set == b.skyline_set

    def test_base_query_matches_brute_force(self, workload):
        _, dataset = workload
        engine = BatchQueryEngine(dataset)
        result = engine.run_query(BatchQuery("base"))
        truth = frozenset(brute_force_skyline(dataset).skyline_ids)
        assert result.skyline_set == truth


class TestCaching:
    def test_identical_topology_is_cached(self, workload):
        schema, dataset = workload
        engine = BatchQueryEngine(dataset)
        first = engine.run_query(BatchQuery("a", random_query_preferences(schema, 9)))
        second = engine.run_query(BatchQuery("b", random_query_preferences(schema, 9)))
        assert not first.from_cache and second.from_cache
        assert first.skyline_set == second.skyline_set
        assert engine.queries_evaluated == 1 and engine.cache_hits == 1

    def test_semantically_equal_dags_share_cache(self):
        # A chain given as Hasse edges vs its full transitive closure: same
        # preference relation, different edge sets.
        hasse = chain(["a", "b", "c"])
        from repro.order.dag import PartialOrderDAG

        closure = PartialOrderDAG(
            ["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")]
        )
        assert dag_signature(hasse) == dag_signature(closure)
        schema = Schema(
            [TotalOrderAttribute("x"), PartialOrderAttribute("p", hasse)]
        )
        dataset = Dataset(schema, [(1, "a"), (2, "b"), (0, "c")])
        engine = BatchQueryEngine(dataset)
        first = engine.run_query(BatchQuery("hasse", {"p": hasse}))
        second = engine.run_query(BatchQuery("closure", {"p": closure}))
        assert second.from_cache
        assert first.skyline_set == second.skyline_set


class TestPrefilter:
    def test_prefilter_never_drops_a_skyline_record(self, workload):
        schema, dataset = workload
        engine = BatchQueryEngine(dataset)
        candidates = set(engine._candidate_ids)
        assert len(candidates) <= len(dataset)
        for seed in range(6):
            overrides = random_query_preferences(schema, seed)
            reference = stss_skyline(
                dataset.with_schema(schema.replace_partial_order(overrides))
            )
            assert set(reference.skyline_ids) <= candidates


class TestValidation:
    def test_unknown_attribute_override_rejected(self, workload):
        schema, dataset = workload
        engine = BatchQueryEngine(dataset)
        with pytest.raises(QueryError):
            engine.run_query(BatchQuery("bad", {"nope": paper_example_dag()}))

    def test_domain_shrinking_override_rejected_like_sharded_path(self, workload):
        # The single-process path must agree with the sharded path: an
        # override missing domain values is a QueryError either way.
        from repro.order.dag import PartialOrderDAG

        schema, dataset = workload
        attribute = schema.partial_order_attributes[0]
        shrunk = PartialOrderDAG(list(attribute.domain)[:-1], [])
        for engine in (
            BatchQueryEngine(dataset),
            BatchQueryEngine(dataset, workers=0, num_shards=2),
        ):
            with pytest.raises(QueryError, match="missing domain values"):
                engine.run_query(BatchQuery("bad", {attribute.name: shrunk}))

    def test_summary_counts(self, workload):
        schema, dataset = workload
        engine = BatchQueryEngine(dataset)
        engine.run(queries_from_seeds(schema, [1, 1, 2]))
        summary = engine.summary()
        assert summary["queries_evaluated"] == 2
        assert summary["cache_hits"] == 1
        assert summary["dataset_size"] == len(dataset)
        assert 0 < summary["candidates_after_prefilter"] <= len(dataset)


class TestBoundedCaches:
    def test_result_cache_is_lru_bounded(self, workload):
        schema, dataset = workload
        engine = BatchQueryEngine(dataset, cache_size=2)
        engine.run(queries_from_seeds(schema, [1, 2, 3]))
        summary = engine.summary()
        assert summary["cached_topologies"] <= 2
        assert summary["cache_capacity"] == 2
        assert summary["cache_evictions"] >= 1
        # The evicted topology (seed 1) must be recomputed, not served stale.
        result = engine.run_query(queries_from_seeds(schema, [1])[0])
        assert not result.from_cache
        reference = stss_skyline(
            dataset.with_schema(
                schema.replace_partial_order(random_query_preferences(schema, 1))
            )
        )
        assert result.skyline_set == frozenset(reference.skyline_ids)

    def test_recently_used_entries_survive(self, workload):
        schema, dataset = workload
        engine = BatchQueryEngine(dataset, cache_size=2)
        q1, q2, q3 = queries_from_seeds(schema, [1, 2, 3])
        engine.run([q1, q2, q1, q3])  # refresh q1 before q3 evicts q2
        assert engine.run_query(q1).from_cache
        assert not engine.run_query(q2).from_cache

    def test_cache_size_must_be_positive(self, workload):
        _, dataset = workload
        with pytest.raises(QueryError):
            BatchQueryEngine(dataset, cache_size=0)


class TestShardedEngine:
    @pytest.mark.parametrize("workers,num_shards", [(0, 3), (2, 4)])
    def test_sharded_engine_matches_single_process(self, workload, workers, num_shards):
        schema, dataset = workload
        plain = BatchQueryEngine(dataset)
        queries = [BatchQuery("base")] + queries_from_seeds(schema, [11, 12])
        with BatchQueryEngine(dataset, workers=workers, num_shards=num_shards) as sharded:
            for a, b in zip(plain.run(queries), sharded.run(queries)):
                assert a.skyline_set == b.skyline_set
            summary = sharded.summary()
            assert summary["workers"] == workers
            assert summary["sharding"]["num_shards"] == num_shards

    def test_workers_env_var_mirrors_flag(self, workload, monkeypatch):
        _, dataset = workload
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert BatchQueryEngine(dataset).executor is None
        monkeypatch.delenv("REPRO_WORKERS")
        assert BatchQueryEngine(dataset).executor is None
        with BatchQueryEngine(dataset, workers=0, num_shards=2) as engine:
            assert engine.executor is not None and engine.executor.workers == 0

    @pytest.mark.parametrize("merge_strategy", ["sort-merge", "all-pairs"])
    def test_merge_strategy_plumbed_through(self, workload, merge_strategy):
        schema, dataset = workload
        plain = BatchQueryEngine(dataset)
        engine = BatchQueryEngine(
            dataset, workers=0, num_shards=3, merge_strategy=merge_strategy
        )
        assert engine.executor.merge_strategy == merge_strategy
        assert engine.summary()["sharding"]["merge_strategy"] == merge_strategy
        query = queries_from_seeds(schema, [21])[0]
        assert engine.run_query(query).skyline_set == plain.run_query(query).skyline_set

    def test_merge_env_var_validated_even_without_executor(self, workload, monkeypatch):
        from repro.exceptions import ExperimentError

        _, dataset = workload
        monkeypatch.setenv("REPRO_MERGE", "bogus")
        with pytest.raises(ExperimentError, match="REPRO_MERGE"):
            BatchQueryEngine(dataset)


class TestConcurrentFacade:
    """The engine must tolerate many querying threads plus summary readers."""

    def test_same_topology_elects_one_computing_thread(self, workload):
        import threading

        schema, dataset = workload
        engine = BatchQueryEngine(dataset)
        query = queries_from_seeds(schema, [31])[0]
        barrier = threading.Barrier(6)
        results: list = []

        def one_client() -> None:
            barrier.wait()
            results.append(engine.run_query(query))

        threads = [threading.Thread(target=one_client) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert engine.queries_evaluated == 1 and engine.cache_hits == 5
        first = results[0].skyline_set
        assert all(result.skyline_set == first for result in results)

    def test_summary_hammered_during_concurrent_queries(self, workload):
        """Regression: counters stay consistent once the global lock is split."""
        import threading

        schema, dataset = workload
        engine = BatchQueryEngine(dataset, workers=0, num_shards=3)
        queries = queries_from_seeds(schema, range(40, 52))
        serial = {q.name: BatchQueryEngine(dataset).run_query(q).skyline_set for q in queries}
        stop = threading.Event()
        snapshots: list[dict] = []
        errors: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    snapshots.append(engine.summary())
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        def client(chunk) -> None:
            try:
                for query in chunk:
                    assert engine.run_query(query).skyline_set == serial[query.name]
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        reader_thread = threading.Thread(target=reader)
        clients = [
            threading.Thread(target=client, args=(queries[index::4],))
            for index in range(4)
        ]
        reader_thread.start()
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        stop.set()
        reader_thread.join()
        assert not errors
        assert snapshots, "summary reader never ran"
        for summary in snapshots:
            assert 0 <= summary["queries_evaluated"] + summary["cache_hits"] <= len(queries)
        final = engine.summary()
        assert final["queries_evaluated"] + final["cache_hits"] == len(queries)
        assert final["queries_evaluated"] == len(queries)  # all topologies distinct


class TestColumnarEngine:
    """The frame data plane: identical results, phases accounted."""

    def test_frame_and_record_engines_agree(self, workload):
        schema, dataset = workload
        queries = [BatchQuery("base")] + queries_from_seeds(schema, range(4))
        record = BatchQueryEngine(dataset, use_frame=False).run(queries)
        columnar = BatchQueryEngine(dataset, use_frame=True).run(queries)
        for record_result, frame_result in zip(record, columnar):
            assert frame_result.skyline_set == record_result.skyline_set

    def test_frame_flag_reported_in_summary(self, workload):
        _, dataset = workload
        assert BatchQueryEngine(dataset, use_frame=True).summary()["frame"] is True
        assert BatchQueryEngine(dataset, use_frame=False).summary()["frame"] is False

    def test_phase_seconds_track_evaluated_queries(self, workload):
        schema, dataset = workload
        # workers=0: index_build tracks the in-process path only (sharded
        # runs fold tree construction into their workers' local phase).
        engine = BatchQueryEngine(dataset, workers=0)
        phases = engine.summary()["phase_seconds"]
        assert set(phases) == {
            "kernel_warmup",
            "encode",
            "build",
            "index_build",
            "query",
            "merge",
        }
        assert all(value >= 0.0 for value in phases.values())
        baseline_query = phases["query"]
        baseline_index = phases["index_build"]
        engine.run([BatchQuery("base")] + queries_from_seeds(schema, [1]))
        after = engine.summary()["phase_seconds"]
        assert after["query"] > baseline_query
        # In-process evaluation bulk-loads one data R-tree per topology miss.
        assert after["index_build"] > baseline_index
        # Cache hits add no phase time.
        settled = engine.summary()["phase_seconds"]
        engine.run_query(BatchQuery("base-again"))
        assert engine.summary()["phase_seconds"] == settled

    def test_phase_seconds_sum_to_sane_total(self, workload):
        import time

        schema, dataset = workload
        started = time.perf_counter()
        engine = BatchQueryEngine(dataset, workers=0)
        engine.run([BatchQuery("base")] + queries_from_seeds(schema, [1, 2]))
        elapsed = time.perf_counter() - started
        phases = engine.summary()["phase_seconds"]
        # The phases are disjoint wall-clock slices of this thread's work, so
        # their sum cannot exceed the end-to-end elapsed time.
        assert 0.0 <= sum(phases.values()) <= elapsed
        assert phases["index_build"] > 0.0

    def test_sharded_engine_accounts_merge_phase(self, workload):
        schema, dataset = workload
        with BatchQueryEngine(dataset, workers=0, num_shards=3) as engine:
            engine.run([BatchQuery("base")] + queries_from_seeds(schema, [2]))
            phases = engine.summary()["phase_seconds"]
        assert phases["query"] > 0.0
        assert phases["merge"] >= 0.0

    def test_frame_engine_sharded_matches_record_engine(self, workload):
        schema, dataset = workload
        queries = [BatchQuery("base")] + queries_from_seeds(schema, range(3))
        with (
            BatchQueryEngine(dataset, num_shards=3, use_frame=True) as columnar,
            BatchQueryEngine(dataset, num_shards=3, use_frame=False) as record,
        ):
            for frame_result, record_result in zip(
                columnar.run(queries), record.run(queries)
            ):
                assert frame_result.skyline_set == record_result.skyline_set
