"""Property suite: the columnar frame path is indistinguishable from the
record path.

For random mixed TO/PO datasets, both kernel backends and shard counts 1-4,
the frame path must produce the identical skyline id-set and spend
equal-or-fewer dominance checks than the record-at-a-time reference.  (The
implementation is stronger than the contract — identical discovery order and
identical check counts — but the asserted property is what future
optimizations must preserve.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stss import stss_skyline
from repro.data.columns import EncodedFrame
from repro.kernels import available_kernels
from repro.parallel import ShardedExecutor
from repro.skyline.less import less_skyline
from repro.skyline.sfs import sfs_skyline
from tests.conftest import mixed_dataset_strategy

KERNELS = available_kernels()


class TestColumnarEqualsRecordPath:
    @given(
        dataset=mixed_dataset_strategy(max_rows=30, min_to=0),
        kernel=st.sampled_from(KERNELS),
    )
    @settings(max_examples=25, deadline=None)
    def test_scan_algorithms(self, dataset, kernel):
        frame = EncodedFrame.from_dataset(dataset)
        for algorithm in (sfs_skyline, less_skyline):
            record = algorithm(dataset, kernel=kernel, use_frame=False)
            columnar = algorithm(dataset, kernel=kernel, frame=frame)
            assert frozenset(columnar.skyline_ids) == frozenset(record.skyline_ids), (
                algorithm.__name__
            )
            assert (
                columnar.stats.dominance_checks <= record.stats.dominance_checks
            ), algorithm.__name__

    @given(
        dataset=mixed_dataset_strategy(max_rows=30, min_to=0),
        kernel=st.sampled_from(KERNELS),
    )
    @settings(max_examples=25, deadline=None)
    def test_stss(self, dataset, kernel):
        frame = EncodedFrame.from_dataset(dataset)
        record = stss_skyline(dataset, kernel=kernel, use_frame=False)
        columnar = stss_skyline(dataset, kernel=kernel, frame=frame)
        assert frozenset(columnar.skyline_ids) == frozenset(record.skyline_ids)
        assert columnar.stats.dominance_checks <= record.stats.dominance_checks

    @given(
        dataset=mixed_dataset_strategy(max_rows=30, min_to=0),
        kernel=st.sampled_from(KERNELS),
        num_shards=st.integers(min_value=1, max_value=4),
        merge_strategy=st.sampled_from(["sort-merge", "all-pairs"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_sharded_executor(self, dataset, kernel, num_shards, merge_strategy):
        record_executor = ShardedExecutor(
            dataset,
            num_shards=num_shards,
            workers=0,
            kernel=kernel,
            merge_strategy=merge_strategy,
            use_frame=False,
        )
        frame_executor = ShardedExecutor(
            dataset,
            num_shards=num_shards,
            workers=0,
            kernel=kernel,
            merge_strategy=merge_strategy,
            use_frame=True,
        )
        record = record_executor.query()
        columnar = frame_executor.query()
        assert columnar.skyline_set == record.skyline_set
        assert columnar.merge_checks <= record.merge_checks
        assert record_executor.summary()["frame"] is False
        assert frame_executor.summary()["frame"] is True


@pytest.mark.skipif(
    "numpy" not in KERNELS, reason="fallback frame backend needs a NumPy reference"
)
class TestFallbackFrameBackend:
    @given(dataset=mixed_dataset_strategy(max_rows=20))
    @settings(max_examples=10, deadline=None)
    def test_tuple_backend_agrees_with_numpy_backend(self, dataset):
        import repro.data.columns as columns

        reference = sfs_skyline(dataset, frame=EncodedFrame.from_dataset(dataset))
        original = columns._numpy_or_none
        columns._numpy_or_none = lambda: None
        try:
            fallback_frame = EncodedFrame.from_dataset(dataset)
            assert not fallback_frame.uses_numpy
            fallback = sfs_skyline(dataset, frame=fallback_frame, kernel="purepython")
        finally:
            columns._numpy_or_none = original
        assert frozenset(fallback.skyline_ids) == frozenset(reference.skyline_ids)
