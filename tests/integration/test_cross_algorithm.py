"""Integration tests: every algorithm agrees on every workload configuration."""

import pytest

from repro.baselines import bbs_plus_skyline, sdc_plus_skyline, sdc_skyline
from repro.core import stss_skyline
from repro.data.workloads import WorkloadSpec
from repro.dynamic import dtss_skyline, sdc_plus_dynamic_skyline
from repro.order.dag import PartialOrderDAG
from repro.skyline import bnl_skyline, brute_force_skyline, sfs_skyline

STATIC_ALGORITHMS = {
    "stss": lambda ds: stss_skyline(ds),
    "stss-plain": lambda ds: stss_skyline(ds, use_virtual_rtree=False, use_dyadic_cache=False),
    "bnl": lambda ds: bnl_skyline(ds, window_size=25),
    "sfs": sfs_skyline,
    "bbs+": bbs_plus_skyline,
    "sdc": sdc_skyline,
    "sdc+": sdc_plus_skyline,
}

CONFIGURATIONS = [
    dict(distribution="independent", num_total_order=2, num_partial_order=1, dag_height=3, dag_density=1.0),
    dict(distribution="independent", num_total_order=3, num_partial_order=2, dag_height=3, dag_density=0.6),
    dict(distribution="anticorrelated", num_total_order=2, num_partial_order=1, dag_height=5, dag_density=0.8),
    dict(distribution="anticorrelated", num_total_order=2, num_partial_order=2, dag_height=4, dag_density=0.4),
    dict(distribution="correlated", num_total_order=4, num_partial_order=1, dag_height=4, dag_density=1.0),
]


@pytest.fixture(scope="module", params=range(len(CONFIGURATIONS)), ids=lambda i: f"config{i}")
def workload(request):
    config = CONFIGURATIONS[request.param]
    spec = WorkloadSpec(name=f"integration-{request.param}", cardinality=180,
                        to_domain_size=40, seed=100 + request.param, **config)
    schema, dataset = spec.build()
    truth = frozenset(brute_force_skyline(dataset).skyline_ids)
    return schema, dataset, truth


class TestStaticAgreement:
    @pytest.mark.parametrize("name", sorted(STATIC_ALGORITHMS))
    def test_algorithm_matches_brute_force(self, workload, name):
        _, dataset, truth = workload
        result = STATIC_ALGORITHMS[name](dataset)
        assert frozenset(result.skyline_ids) == truth, name

    def test_skyline_members_are_never_dominated(self, workload):
        from repro.skyline.dominance import dominates_records

        schema, dataset, truth = workload
        for skyline_id in truth:
            assert not any(
                dominates_records(schema, other, dataset[skyline_id])
                for other in dataset
                if other.id != skyline_id
            )

    def test_non_members_are_dominated_by_a_skyline_record(self, workload):
        from repro.skyline.dominance import dominates_records

        schema, dataset, truth = workload
        for record in dataset:
            if record.id in truth:
                continue
            assert any(
                dominates_records(schema, dataset[skyline_id], record) for skyline_id in truth
            )


class TestDynamicAgreement:
    def test_dynamic_methods_agree_with_static_recomputation(self, workload):
        schema, dataset, _ = workload
        # Build one deterministic query per PO attribute: a chain over its values.
        partial_orders = {}
        for attribute in schema.partial_order_attributes:
            values = list(attribute.dag.values)
            partial_orders[attribute.name] = PartialOrderDAG(values, list(zip(values, values[1:])))
        static_schema = schema.replace_partial_order(partial_orders)
        truth = frozenset(brute_force_skyline(dataset.with_schema(static_schema)).skyline_ids)

        dtss_result = dtss_skyline(dataset, partial_orders)
        baseline_result = sdc_plus_dynamic_skyline(dataset, partial_orders)
        assert frozenset(dtss_result.skyline_ids) == truth
        assert frozenset(baseline_result.skyline_ids) == truth
