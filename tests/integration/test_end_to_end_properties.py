"""Property-based end-to-end tests: random datasets, random preference DAGs."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import bbs_plus_skyline, sdc_plus_skyline, sdc_skyline
from repro.core import stss_skyline
from repro.dynamic import dtss_skyline
from repro.order.dag import PartialOrderDAG
from repro.skyline import bnl_skyline, brute_force_skyline, sfs_skyline

from tests.conftest import mixed_dataset_strategy

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**COMMON_SETTINGS)
@given(dataset=mixed_dataset_strategy())
def test_stss_matches_brute_force(dataset):
    truth = frozenset(brute_force_skyline(dataset).skyline_ids)
    for options in ({}, {"use_virtual_rtree": False}, {"use_dyadic_cache": False, "max_entries": 4}):
        assert frozenset(stss_skyline(dataset, **options).skyline_ids) == truth


@settings(**COMMON_SETTINGS)
@given(dataset=mixed_dataset_strategy())
def test_baselines_match_brute_force(dataset):
    truth = frozenset(brute_force_skyline(dataset).skyline_ids)
    assert frozenset(bbs_plus_skyline(dataset).skyline_ids) == truth
    assert frozenset(sdc_skyline(dataset).skyline_ids) == truth
    assert frozenset(sdc_plus_skyline(dataset).skyline_ids) == truth


@settings(**COMMON_SETTINGS)
@given(dataset=mixed_dataset_strategy())
def test_scan_based_algorithms_match_brute_force(dataset):
    truth = frozenset(brute_force_skyline(dataset).skyline_ids)
    assert frozenset(bnl_skyline(dataset, window_size=5).skyline_ids) == truth
    assert frozenset(sfs_skyline(dataset).skyline_ids) == truth


@settings(**COMMON_SETTINGS)
@given(dataset=mixed_dataset_strategy(max_po=1), seed=st.integers(min_value=0, max_value=1000))
def test_dtss_matches_static_recomputation_for_random_queries(dataset, seed):
    schema = dataset.schema
    attribute = schema.partial_order_attributes[0]
    values = list(attribute.dag.values)
    rng = random.Random(seed)
    shuffled = values[:]
    rng.shuffle(shuffled)
    edges = [
        (shuffled[i], shuffled[j])
        for i in range(len(shuffled))
        for j in range(i + 1, len(shuffled))
        if rng.random() < 0.3
    ]
    query = {attribute.name: PartialOrderDAG(values, edges)}
    static_schema = schema.replace_partial_order(query)
    truth = frozenset(brute_force_skyline(dataset.with_schema(static_schema, validate=False)).skyline_ids)
    assert frozenset(dtss_skyline(dataset, query).skyline_ids) == truth
    assert frozenset(dtss_skyline(dataset, query, use_local_skylines=True).skyline_ids) == truth


@settings(**COMMON_SETTINGS)
@given(dataset=mixed_dataset_strategy())
def test_skyline_is_minimal_and_complete(dataset):
    """Every record is either in the skyline or dominated by a skyline record."""
    from repro.skyline.dominance import dominates_records

    schema = dataset.schema
    truth = frozenset(brute_force_skyline(dataset).skyline_ids)
    for record in dataset:
        if record.id in truth:
            assert not any(
                dominates_records(schema, other, record) for other in dataset if other.id != record.id
            )
        else:
            assert any(dominates_records(schema, dataset[s], record) for s in truth)
