"""Property suite: delta-merged results are bitwise-identical to a rebuild.

The delta plane's contract: after ANY interleaving of inserts and deletes,
a query through the mutated engine returns exactly — same ids, same order —
what a fresh engine built from scratch over the live rows returns.  Pinned
here across random mutation sequences, 1-4 shards, both kernels, the frame
and record paths, and (in the store matrix) packed stores with mmap on/off,
including sequences that cross the auto-compaction threshold.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import pack
from repro.data.dataset import Dataset
from repro.data.workloads import WorkloadSpec
from repro.engine.batch import BatchQuery, BatchQueryEngine, random_query_preferences
from repro.kernels import available_kernels
from tests.conftest import mixed_dataset_strategy

KERNELS = available_kernels()


def _random_row(schema, rng):
    dags = [a.dag for a in schema.partial_order_attributes]
    return tuple(rng.randint(0, 8) for _ in range(schema.num_total_order)) + tuple(
        rng.choice(dag.values) for dag in dags
    )


def _mutate_and_check(engine, schema, live, rng, steps, queries, rebuild_options):
    """Apply random mutations; after each, compare against a fresh rebuild.

    ``live`` maps stable id -> row values and is updated in place.
    """
    for _ in range(steps):
        if rng.random() < 0.55 or not live:
            row = _random_row(schema, rng)
            (new_id,) = engine.insert([row])
            live[new_id] = row
        else:
            victim = rng.choice(sorted(live))
            assert engine.delete([victim]) == [victim]
            del live[victim]
        if not live:
            continue
        ordered_ids = sorted(live)
        reference_data = Dataset(schema, [live[i] for i in ordered_ids])
        with BatchQueryEngine(reference_data, **rebuild_options) as reference:
            for query in queries:
                merged = engine.run_query(query).skyline_ids
                rebuilt = reference.run_query(query).skyline_ids
                assert merged == [ordered_ids[p] for p in rebuilt], query.name


class TestDeltaEqualsRebuild:
    @given(
        dataset=mixed_dataset_strategy(max_rows=20),
        kernel=st.sampled_from(KERNELS),
        use_frame=st.booleans(),
        num_shards=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_in_memory(self, dataset, kernel, use_frame, num_shards, seed):
        rng = random.Random(seed)
        options = dict(
            kernel=kernel,
            use_frame=use_frame,
            workers=0,
            num_shards=num_shards if num_shards > 1 else None,
            compact_threshold=0,
        )
        queries = [
            BatchQuery("base"),
            BatchQuery(
                "q", dag_overrides=random_query_preferences(dataset.schema, seed % 97)
            ),
        ]
        live = {record.id: tuple(record.values) for record in dataset.records}
        with BatchQueryEngine(dataset, **options) as engine:
            _mutate_and_check(engine, dataset.schema, live, rng, 6, queries, options)

    @given(
        dataset=mixed_dataset_strategy(max_rows=20),
        kernel=st.sampled_from(KERNELS),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=10, deadline=None)
    def test_compaction_mid_sequence(self, dataset, kernel, seed):
        """Crossing a compaction keeps the contract on both sides of the fold."""
        rng = random.Random(seed)
        options = dict(kernel=kernel, compact_threshold=0)
        queries = [BatchQuery("base")]
        live = {record.id: tuple(record.values) for record in dataset.records}
        with BatchQueryEngine(dataset, **options) as engine:
            _mutate_and_check(engine, dataset.schema, live, rng, 3, queries, options)
            engine.compact()
            _mutate_and_check(engine, dataset.schema, live, rng, 3, queries, options)


STORE_MATRIX = [
    pytest.param(True, "eager", id="mmap-eager"),
    pytest.param(True, "lazy", id="mmap-lazy"),
    pytest.param(False, "eager", id="load-eager"),
    pytest.param(False, "lazy", id="load-lazy"),
]


class TestStoreBackedDeltaEqualsRebuild:
    @pytest.mark.parametrize("mmap_mode,crc", STORE_MATRIX)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_store_matrix(self, tmp_path, mmap_mode, crc, seed):
        spec = WorkloadSpec(
            name="delta-prop",
            cardinality=120,
            num_total_order=2,
            num_partial_order=1,
            dag_height=3,
            dag_density=0.8,
            to_domain_size=25,
            seed=seed,
        )
        schema, dataset = spec.build()
        path = str(tmp_path / "catalog.rpro")
        pack(dataset, path)
        rng = random.Random(seed * 31)
        queries = [
            BatchQuery("base"),
            BatchQuery("q", dag_overrides=random_query_preferences(schema, seed)),
        ]
        live = {record.id: tuple(record.values) for record in dataset.records}
        # Threshold of 9 makes the 14-step schedule cross one compaction.
        options = dict(mmap=mmap_mode, crc=crc, compact_threshold=9)
        with BatchQueryEngine(path, **options) as engine:
            _mutate_and_check(
                engine, schema, live, rng, 14, queries, dict(crc=crc)
            )
            assert engine.compactions >= 1
            expected = {q.name: engine.run_query(q).skyline_ids for q in queries}
        # A reopen (log replay over the compacted base) answers identically.
        with BatchQueryEngine(path, **options) as reopened:
            for query in queries:
                assert reopened.run_query(query).skyline_ids == expected[query.name]
