"""Unit tests: the crash-safe DeltaLog sidecar (torn tails, generations)."""

from __future__ import annotations

import pytest

from repro.exceptions import StoreError
from repro.store.delta import LOG_MAGIC, DeltaLog, delta_log_path


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "catalog.rpro.delta")


def _write_sample(path, generation=1):
    log = DeltaLog.create(path, generation)
    log.append_inserts([7, 8], [(1.0, 2.0), (3.0, 4.0)], [(0,), (1,)])
    log.append_deletes([3])
    return log


class TestRoundtrip:
    def test_missing_file_loads_as_none(self, log_path):
        assert DeltaLog.load(log_path) is None

    def test_create_then_load(self, log_path):
        _write_sample(log_path, generation=5)
        log = DeltaLog.load(log_path)
        assert log is not None and log.generation == 5
        kinds = [entry[0] for entry in log.entries]
        assert kinds == ["insert", "delete"]
        _, ids, to_rows, code_rows = log.entries[0]
        assert ids == [7, 8]
        assert to_rows == [(1.0, 2.0), (3.0, 4.0)]
        assert code_rows == [(0,), (1,)]
        assert log.entries[1][1] == [3]

    def test_bad_magic_raises(self, log_path):
        with open(log_path, "wb") as handle:
            handle.write(b"NOTALOG!" + bytes(8))
        with pytest.raises(StoreError, match="delta log"):
            DeltaLog.load(log_path)

    def test_delta_log_path_suffix(self):
        assert delta_log_path("/x/catalog.rpro") == "/x/catalog.rpro.delta"


class TestTornTail:
    def test_truncated_frame_keeps_valid_prefix(self, log_path):
        _write_sample(log_path)
        payload = open(log_path, "rb").read()
        # Chop into the middle of the final (delete) frame.
        with open(log_path, "wb") as handle:
            handle.write(payload[:-5])
        log = DeltaLog.load(log_path)
        assert [entry[0] for entry in log.entries] == ["insert"]

    def test_corrupt_crc_stops_the_scan(self, log_path):
        _write_sample(log_path)
        payload = bytearray(open(log_path, "rb").read())
        payload[-1] ^= 0xFF  # flip a payload byte of the last frame
        with open(log_path, "wb") as handle:
            handle.write(bytes(payload))
        log = DeltaLog.load(log_path)
        assert [entry[0] for entry in log.entries] == ["insert"]

    def test_append_after_torn_tail_overwrites_garbage(self, log_path):
        _write_sample(log_path)
        payload = open(log_path, "rb").read()
        with open(log_path, "wb") as handle:
            handle.write(payload[:-5])
        log = DeltaLog.load(log_path)
        log.append_deletes([9])
        reloaded = DeltaLog.load(log_path)
        assert [entry[0] for entry in reloaded.entries] == ["insert", "delete"]
        assert reloaded.entries[1][1] == [9]


class TestGenerations:
    def test_ensure_keeps_matching_generation(self, log_path):
        _write_sample(log_path, generation=2)
        log = DeltaLog.ensure(log_path, 2)
        assert len(log.entries) == 2

    def test_ensure_discards_stale_generation(self, log_path):
        _write_sample(log_path, generation=2)
        log = DeltaLog.ensure(log_path, 3)
        assert log.generation == 3 and log.entries == []
        # The stale entries are gone from disk too.
        assert DeltaLog.load(log_path).entries == []

    def test_reset_bumps_generation_and_clears(self, log_path):
        log = _write_sample(log_path, generation=1)
        log.reset(2)
        reloaded = DeltaLog.load(log_path)
        assert reloaded.generation == 2 and reloaded.entries == []
        header = open(log_path, "rb").read(8)
        assert header == LOG_MAGIC
