"""Unit tests: the append-only DeltaFrame's id stability and live views."""

from __future__ import annotations

import pytest

from repro.data.columns import EncodedFrame
from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.delta.frame import DeltaFrame, as_record_dataset, dataset_from_frame
from repro.exceptions import QueryError
from repro.order.builders import chain


@pytest.fixture
def schema():
    return Schema(
        [
            TotalOrderAttribute("price"),
            TotalOrderAttribute("stops", best="max"),
            PartialOrderAttribute("airline", chain(("a", "b", "c"))),
        ]
    )


@pytest.fixture
def base(schema):
    rows = [(10.0, 1, "a"), (20.0, 2, "b"), (30.0, 0, "c"), (15.0, 3, "a")]
    return EncodedFrame.from_dataset(Dataset(schema, rows))


class TestIdStability:
    def test_inserts_number_from_next_id(self, base):
        delta = DeltaFrame(base)
        assert delta.next_id == len(base)
        ids = delta.insert_rows([(5.0, 4, "b"), (6.0, 5, "c")])
        assert ids == [4, 5]
        assert delta.next_id == 6

    def test_ids_never_reused_after_delete(self, base):
        delta = DeltaFrame(base)
        (first,) = delta.insert_rows([(5.0, 4, "b")])
        delta.delete_ids([first])
        (second,) = delta.insert_rows([(5.0, 4, "b")])
        assert second == first + 1

    def test_base_ids_remap(self, base):
        delta = DeltaFrame(base, base_ids=[10, 20, 30, 40])
        assert delta.stable_id_of_base_row(2) == 30
        assert delta.next_id == 41
        assert delta.insert_rows([(1.0, 1, "a")]) == [41]
        removed, base_rows = delta.delete_ids([20])
        assert removed == [20] and base_rows == [1]

    def test_insert_id_collision_raises(self, base):
        delta = DeltaFrame(base)
        with pytest.raises(QueryError, match="already exists"):
            delta.replay_insert(0, (1.0, 1.0), (0,))


class TestDeletes:
    def test_delete_is_idempotent(self, base):
        delta = DeltaFrame(base)
        assert delta.delete_ids([1])[0] == [1]
        assert delta.delete_ids([1])[0] == []

    def test_delete_unknown_id_raises(self, base):
        delta = DeltaFrame(base)
        with pytest.raises(QueryError, match="unknown record id"):
            delta.delete_ids([99])

    def test_dead_ids_covers_base_and_inserts(self, base):
        delta = DeltaFrame(base)
        ids = delta.insert_rows([(5.0, 4, "b"), (6.0, 5, "c")])
        delta.delete_ids([2, ids[1]])
        assert delta.dead_ids() == [2, ids[1]]
        assert not delta.is_live(2) and delta.is_live(ids[0])


class TestLiveViews:
    def test_live_frame_and_ids_roundtrip(self, base, schema):
        delta = DeltaFrame(base)
        delta.insert_rows([(5.0, 4, "b")])
        delta.delete_ids([0])
        frame, ids = delta.live_frame_and_ids()
        assert ids == [1, 2, 3, 4]
        assert len(frame) == 4
        dataset, dataset_ids = delta.live_dataset_and_ids()
        assert dataset_ids == ids
        assert dataset.records[-1].values == (5.0, 4, "b")

    def test_insert_entries_cursor(self, base):
        delta = DeltaFrame(base)
        delta.insert_rows([(5.0, 4, "b")])
        delta.insert_rows([(6.0, 5, "c")])
        entries = delta.insert_entries(1)
        assert len(entries) == 1
        record_id, to_values, po_values = entries[0]
        assert record_id == 5 and po_values == ("c",)
        # Canonical TO: "stops" is a max-attribute, so it is negated.
        assert to_values == (6.0, -5.0)

    def test_decode_roundtrips_max_attributes(self, base, schema):
        dataset = dataset_from_frame(base)
        assert dataset.records[1].values == (20.0, 2, "b")

    def test_as_record_dataset_normalizes_all_sources(self, base, schema):
        plain = Dataset(schema, [(1.0, 1, "a")])
        assert as_record_dataset(plain) == (plain, None)
        from_frame, ids = as_record_dataset(base)
        assert ids is None and len(from_frame) == len(base)
        delta = DeltaFrame(base)
        delta.delete_ids([0])
        records, stable = as_record_dataset(delta)
        assert stable == [1, 2, 3] and len(records) == 3
        with pytest.raises(QueryError, match="expected a Dataset"):
            as_record_dataset(object())


class TestCompactionFolding:
    def test_mutation_counters_and_version(self, base):
        delta = DeltaFrame(base)
        assert delta.mutations == 0 and delta.version == 0
        delta.insert_rows([(5.0, 4, "b")])
        delta.delete_ids([0])
        assert delta.mutations == 2 and delta.version == 2
        assert delta.num_live == len(base)  # one in, one out

    def test_folded_frame_preserves_ids_through_second_delta(self, base):
        delta = DeltaFrame(base)
        delta.insert_rows([(5.0, 4, "b")])
        delta.delete_ids([1])
        frame, ids = delta.live_frame_and_ids()
        second = DeltaFrame(frame, base_ids=ids)
        assert second.next_id == 5
        assert second.stable_id_of_base_row(len(frame) - 1) == 4
        removed, _ = second.delete_ids([4])
        assert removed == [4]
