"""Crash-safety: a compaction interrupted at any point leaves a clean store.

Compaction has exactly one commit point — the atomic ``os.replace`` of the
packed temp file over the store.  These tests inject a crash on either side
of it and prove the on-disk state reopens correctly both ways:

* before the swap  -> old store + old log survive; mutations replay.
* after the swap, before the log reset -> new store wins; the stale-
  generation log is fenced off, so mutations are NOT applied twice.
"""

from __future__ import annotations

import os

import pytest

from repro.api import pack
from repro.data.workloads import WorkloadSpec
from repro.engine.batch import BatchQuery, BatchQueryEngine
from repro.store.delta import DeltaLog


@pytest.fixture
def packed(tmp_path):
    spec = WorkloadSpec(
        name="crash-test",
        cardinality=150,
        num_total_order=2,
        num_partial_order=1,
        dag_height=3,
        dag_density=0.8,
        to_domain_size=30,
        seed=7,
    )
    _, dataset = spec.build()
    path = str(tmp_path / "catalog.rpro")
    pack(dataset, path)
    return path, dataset


def _dominant_row(dataset):
    row = list(dataset.records[0].values)
    row[0] = -1.0
    row[1] = -1.0
    return tuple(row)


class _Crash(RuntimeError):
    pass


def test_crash_before_swap_keeps_old_store_and_log(packed, monkeypatch):
    path, dataset = packed
    with BatchQueryEngine(path, compact_threshold=0) as engine:
        new_id = engine.insert([_dominant_row(dataset)])[0]
        engine.delete([0])
        expected = engine.run_query(BatchQuery("base")).skyline_ids

        real_replace = os.replace

        def crash(src, dst):
            raise _Crash("power loss before the header swap")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(_Crash):
            engine.compact()
        monkeypatch.setattr(os, "replace", real_replace)

    # The old store (generation 0) and its log are untouched: a fresh open
    # replays the two logged mutations and answers identically.
    with BatchQueryEngine(path, compact_threshold=0) as reopened:
        assert reopened.summary()["store"]["generation"] == 0
        assert reopened.summary()["delta"]["pending_mutations"] == 2
        assert reopened.run_query(BatchQuery("base")).skyline_ids == expected
        assert new_id in expected


def test_crash_between_swap_and_log_reset_fences_stale_log(packed, monkeypatch):
    path, dataset = packed
    with BatchQueryEngine(path, compact_threshold=0) as engine:
        engine.insert([_dominant_row(dataset)])
        engine.delete([0])
        expected = engine.run_query(BatchQuery("base")).skyline_ids

        def crash(self, generation):
            raise _Crash("power loss before the log reset")

        monkeypatch.setattr(DeltaLog, "reset", crash)
        with pytest.raises(_Crash):
            engine.compact()
        monkeypatch.undo()

    # The swap happened: the new-generation store is on disk, while the log
    # still carries generation-0 entries.  The loader must discard them —
    # replaying would apply the folded mutations a second time.
    stale = DeltaLog.load(path + ".delta")
    assert stale is not None and stale.generation == 0 and stale.entries

    with BatchQueryEngine(path, compact_threshold=0) as reopened:
        assert reopened.summary()["store"]["generation"] == 1
        assert reopened.summary()["delta"] is None
        assert reopened.run_query(BatchQuery("base")).skyline_ids == expected
        # The first mutation after the reopen must land in a fresh
        # generation-1 log — never appended behind the stale entries.
        extra = reopened.delete([expected[0]])

    fresh = DeltaLog.load(path + ".delta")
    assert fresh.generation == 1
    assert fresh.entries == [("delete", extra)]
