"""Crash matrix: injected faults on every side of the delta-plane fsyncs.

Driven by the deterministic fault registry (:mod:`repro.faults`) instead of
hand monkeypatching: one parametrized matrix covers the append path (before
the write, a corrupted write, and after the fsync) and both sides of the
compaction commit point (the atomic ``os.replace``).  Every cell closes the
engine mid-failure and proves the on-disk state reopens to a well-defined
answer:

* append ``pre``   -> nothing durable; reopen matches the baseline.
* append ``write`` -> torn tail; the entry is silently dropped on reload.
* append ``post``  -> durable despite the caller-visible error (the
  at-least-once window idempotency tokens exist for).
* compact ``pre``  -> old store + old log survive; mutations replay.
* compact ``post`` -> new store wins; the stale-generation log is fenced
  off, so mutations are NOT applied twice.
"""

from __future__ import annotations

import pytest

from repro.api import pack
from repro.data.workloads import WorkloadSpec
from repro.engine.batch import BatchQuery, BatchQueryEngine
from repro.exceptions import InjectedFaultError, StoreError
from repro.faults import registry as faults_registry
from repro.store.delta import DeltaLog, delta_log_path


@pytest.fixture(autouse=True)
def clean_fault_registry(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults_registry.reset()
    yield
    faults_registry.reset()


@pytest.fixture
def packed(tmp_path):
    spec = WorkloadSpec(
        name="crash-test",
        cardinality=150,
        num_total_order=2,
        num_partial_order=1,
        dag_height=3,
        dag_density=0.8,
        to_domain_size=30,
        seed=7,
    )
    _, dataset = spec.build()
    path = str(tmp_path / "catalog.rpro")
    pack(dataset, path)
    return path, dataset


def _dominant_row(dataset):
    row = list(dataset.records[0].values)
    row[0] = -1.0
    row[1] = -1.0
    return tuple(row)


def _baseline(path):
    with BatchQueryEngine(path, compact_threshold=0) as engine:
        return engine.run_query(BatchQuery("base")).skyline_ids


def _pending(engine):
    delta = engine.summary()["delta"]
    return 0 if delta is None else delta["pending_mutations"]


class TestAppendCrashMatrix:
    @pytest.mark.parametrize("op", ["insert", "delete"])
    @pytest.mark.parametrize(
        "stage, durable",
        [("pre", False), ("post", True)],
        ids=["before-write", "after-fsync"],
    )
    def test_append_fault_durability(self, packed, op, stage, durable):
        path, dataset = packed
        baseline = _baseline(path)
        victim = baseline[0]

        faults_registry.install(
            f"delta.log_append:raise:stage={stage},times=1"
        )
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            with pytest.raises(StoreError, match="injected fault"):
                if op == "insert":
                    engine.insert([_dominant_row(dataset)])
                else:
                    engine.delete([victim])
        faults_registry.uninstall()

        with BatchQueryEngine(path, compact_threshold=0) as reopened:
            skyline = reopened.run_query(BatchQuery("base")).skyline_ids
            if durable:
                # After the fsync the mutation is on disk even though the
                # caller saw an error: it replays on reopen.
                assert _pending(reopened) == 1
                if op == "insert":
                    assert skyline != baseline
                else:
                    assert victim not in skyline
            else:
                # Before the write nothing reached the file: the reopened
                # store answers exactly the baseline.
                assert _pending(reopened) == 0
                assert skyline == baseline

    def test_corrupted_write_becomes_a_torn_tail(self, packed):
        # stage=write flips a payload byte *after* the frame checksum was
        # computed — a bad disk write.  The append itself succeeds, but the
        # entry fails its CRC at EOF on reload and is dropped as a torn
        # tail: at-most-once, never a silently wrong replay.
        path, dataset = packed
        baseline = _baseline(path)
        faults_registry.install("delta.log_append:corrupt:stage=write,times=1")
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            new_id = engine.insert([_dominant_row(dataset)])[0]
            in_session = engine.run_query(BatchQuery("base")).skyline_ids
            assert new_id in in_session
        faults_registry.uninstall()

        with BatchQueryEngine(path, compact_threshold=0) as reopened:
            assert _pending(reopened) == 0
            assert reopened.run_query(BatchQuery("base")).skyline_ids == baseline


class TestCompactionCrashMatrix:
    @pytest.fixture
    def mutated(self, packed):
        """An engine with one insert + one delete pending, plus a crash spec."""
        path, dataset = packed
        engine = BatchQueryEngine(path, compact_threshold=0)
        new_id = engine.insert([_dominant_row(dataset)])[0]
        engine.delete([0])
        expected = engine.run_query(BatchQuery("base")).skyline_ids
        yield path, engine, new_id, expected
        engine.close()

    def test_crash_before_swap_keeps_old_store_and_log(self, mutated):
        path, engine, new_id, expected = mutated
        faults_registry.install("delta.compact_replace:raise:stage=pre,times=1")
        with pytest.raises(InjectedFaultError):
            engine.compact()
        faults_registry.uninstall()
        engine.close()

        # The old store (generation 0) and its log are untouched: a fresh
        # open replays the two logged mutations and answers identically.
        with BatchQueryEngine(path, compact_threshold=0) as reopened:
            assert reopened.summary()["store"]["generation"] == 0
            assert _pending(reopened) == 2
            assert reopened.run_query(BatchQuery("base")).skyline_ids == expected
            assert new_id in expected

    def test_crash_after_swap_fences_stale_log(self, mutated):
        path, engine, _, expected = mutated
        faults_registry.install(
            "delta.compact_replace:raise:stage=post,times=1"
        )
        with pytest.raises(InjectedFaultError):
            engine.compact()
        faults_registry.uninstall()
        engine.close()

        # The swap happened: the new-generation store is on disk, while the
        # log still carries generation-0 entries.  The loader must discard
        # them — replaying would apply the folded mutations a second time.
        stale = DeltaLog.load(delta_log_path(path))
        assert stale is not None and stale.generation == 0 and stale.entries

        with BatchQueryEngine(path, compact_threshold=0) as reopened:
            assert reopened.summary()["store"]["generation"] == 1
            assert reopened.summary()["delta"] is None
            assert reopened.run_query(BatchQuery("base")).skyline_ids == expected
            # The first mutation after the reopen must land in a fresh
            # generation-1 log — never appended behind the stale entries.
            extra = reopened.delete([expected[0]])

        fresh = DeltaLog.load(delta_log_path(path))
        assert fresh.generation == 1
        assert fresh.entries == [("delete", extra)]
