"""Unit tests: BatchQueryEngine live mutations, caching and compaction."""

from __future__ import annotations

import pytest

from repro.api import pack
from repro.data.workloads import WorkloadSpec
from repro.engine.batch import BatchQuery, BatchQueryEngine, random_query_preferences
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        name="mutation-test",
        cardinality=250,
        num_total_order=2,
        num_partial_order=1,
        dag_height=4,
        dag_density=0.8,
        to_domain_size=40,
        seed=13,
    )
    return spec.build()


def _dominant_row(dataset):
    """A row beating everything on the TO attributes (PO from record 0)."""
    row = list(dataset.records[0].values)
    row[0] = -1.0
    row[1] = -1.0
    return tuple(row)


@pytest.mark.parametrize("use_frame", [True, False])
class TestMutationSemantics:
    def test_insert_allocates_fresh_ids_and_changes_results(self, workload, use_frame):
        _, dataset = workload
        with BatchQueryEngine(dataset, use_frame=use_frame) as engine:
            before = engine.run_query(BatchQuery("base")).skyline_ids
            ids = engine.insert([_dominant_row(dataset)])
            assert ids == [len(dataset)]
            after = engine.run_query(BatchQuery("base")).skyline_ids
            assert ids[0] in after and after != before
            assert engine.mutations_applied == 1

    def test_delete_removes_and_reports_only_live_ids(self, workload, use_frame):
        _, dataset = workload
        with BatchQueryEngine(dataset, use_frame=use_frame) as engine:
            base = engine.run_query(BatchQuery("base")).skyline_ids
            victim = base[0]
            assert engine.delete([victim, victim]) == [victim]
            assert victim not in engine.run_query(BatchQuery("base")).skyline_ids
            with pytest.raises(QueryError, match="unknown record id"):
                engine.delete([10**6])

    def test_result_cache_invalidated_on_mutation(self, workload, use_frame):
        schema, dataset = workload
        with BatchQueryEngine(dataset, use_frame=use_frame) as engine:
            query = BatchQuery("q", dag_overrides=random_query_preferences(schema, 3))
            engine.run_query(query)
            assert engine.run_query(query).from_cache
            engine.insert([_dominant_row(dataset)])
            refreshed = engine.run_query(query)
            assert not refreshed.from_cache
            assert len(dataset) in refreshed.skyline_ids


class TestCompaction:
    def test_compact_is_noop_without_mutations(self, workload):
        _, dataset = workload
        with BatchQueryEngine(dataset) as engine:
            summary = engine.compact()
            assert summary["compacted"] is False
            assert engine.compactions == 0

    def test_explicit_compact_preserves_results_and_ids(self, workload):
        schema, dataset = workload
        with BatchQueryEngine(dataset) as engine:
            new_id = engine.insert([_dominant_row(dataset)])[0]
            engine.delete([0, 1])
            before = engine.run_query(BatchQuery("base")).skyline_ids
            summary = engine.compact()
            assert summary["compacted"] is True
            assert summary["rows"] == len(dataset) - 1  # +1 insert, -2 deletes
            assert engine.run_query(BatchQuery("base")).skyline_ids == before
            assert engine.summary()["delta"] is None
            # Stable ids survive the fold: the insert keeps its id, and
            # further mutations see it.
            assert engine.delete([new_id]) == [new_id]

    def test_threshold_triggers_auto_compaction(self, workload):
        _, dataset = workload
        with BatchQueryEngine(dataset, compact_threshold=3) as engine:
            engine.insert([_dominant_row(dataset)])
            engine.delete([0])
            assert engine.compactions == 0
            engine.delete([1])  # third mutation crosses the threshold
            assert engine.compactions == 1
            assert engine.summary()["delta"] is None

    def test_zero_threshold_disables_auto_compaction(self, workload):
        _, dataset = workload
        with BatchQueryEngine(dataset, compact_threshold=0) as engine:
            for record_id in range(10):
                engine.delete([record_id])
            assert engine.compactions == 0
            assert engine.summary()["delta"]["pending_mutations"] == 10

    def test_record_path_engine_compacts_too(self, workload):
        _, dataset = workload
        with BatchQueryEngine(dataset, use_frame=False) as engine:
            engine.insert([_dominant_row(dataset)])
            before = engine.run_query(BatchQuery("base")).skyline_ids
            assert engine.compact()["compacted"] is True
            assert engine.run_query(BatchQuery("base")).skyline_ids == before


class TestStoreBackedMutations:
    def test_mutations_persist_via_delta_log(self, workload, tmp_path):
        _, dataset = workload
        path = str(tmp_path / "catalog.rpro")
        pack(dataset, path)
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            new_id = engine.insert([_dominant_row(dataset)])[0]
            engine.delete([0])
            expected = engine.run_query(BatchQuery("base")).skyline_ids
        with BatchQueryEngine(path, compact_threshold=0) as reopened:
            assert reopened.summary()["delta"]["pending_mutations"] == 2
            assert reopened.run_query(BatchQuery("base")).skyline_ids == expected
            assert new_id in reopened.run_query(BatchQuery("base")).skyline_ids

    def test_compaction_rewrites_store_and_resets_log(self, workload, tmp_path):
        _, dataset = workload
        path = str(tmp_path / "catalog.rpro")
        pack(dataset, path)
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            engine.insert([_dominant_row(dataset)])
            engine.delete([0])
            expected = engine.run_query(BatchQuery("base")).skyline_ids
            summary = engine.compact()
            assert summary["compacted"] is True and summary["generation"] == 1
            assert engine.run_query(BatchQuery("base")).skyline_ids == expected
        with BatchQueryEngine(path) as reopened:
            assert reopened.summary()["delta"] is None
            assert reopened.summary()["store"]["generation"] == 1
            assert reopened.run_query(BatchQuery("base")).skyline_ids == expected

    def test_summary_reports_delta_state(self, workload, tmp_path):
        _, dataset = workload
        path = str(tmp_path / "catalog.rpro")
        pack(dataset, path)
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            engine.insert([_dominant_row(dataset)])
            delta = engine.summary()["delta"]
            assert delta["inserts"] == 1 and delta["live_inserts"] == 1
            assert delta["pending_mutations"] == 1
            assert delta["live_rows"] == len(dataset) + 1
