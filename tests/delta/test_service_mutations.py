"""Integration tests: live mutations through the query service protocol."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.data.workloads import WorkloadSpec
from repro.service import QueryService, ServiceClient
from repro.service.protocol import PROTOCOL_VERSION


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        name="service-mutation-test",
        cardinality=200,
        num_total_order=2,
        num_partial_order=1,
        dag_height=4,
        dag_density=0.8,
        to_domain_size=40,
        seed=17,
    )
    return spec.build()


@pytest.fixture()
def running_service(workload):
    """A live service on an ephemeral port; yields (service, host, port)."""
    _, dataset = workload
    service = QueryService(dataset, workers=0)
    loop = asyncio.new_event_loop()
    address: dict[str, object] = {}
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def main() -> None:
            host, port = await service.start("127.0.0.1", 0)
            address["host"], address["port"] = host, port
            started.set()
            await service.serve_until_shutdown()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "service did not start"
    yield service, address["host"], address["port"]
    try:
        loop.call_soon_threadsafe(service.request_shutdown)
    except RuntimeError:
        pass
    thread.join(timeout=10)
    assert not thread.is_alive(), "service thread did not shut down"


def _dominant_row(dataset):
    row = list(dataset.records[0].values)
    row[0] = -1.0
    row[1] = -1.0
    return tuple(row)


class TestMutationOps:
    def test_insert_changes_query_results(self, running_service, workload):
        _, dataset = workload
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            before = client.query()["skyline_ids"]
            ids = client.insert([_dominant_row(dataset)])
            assert ids == [len(dataset)]
            after = client.query()["skyline_ids"]
            assert ids[0] in after and after != before

    def test_delete_round_trip(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            victim = client.query()["skyline_ids"][0]
            # A repeated id reports once: the second kill is a no-op.
            assert client.delete([victim, victim]) == [victim]
            assert victim not in client.query()["skyline_ids"]

    def test_compact_folds_pending_mutations(self, running_service, workload):
        service, host, port = running_service
        _, dataset = workload
        with ServiceClient(host, port) as client:
            client.insert([_dominant_row(dataset)])
            client.delete([0])
            expected = client.query()["skyline_ids"]
            summary = client.compact()
            assert summary["compacted"] is True
            assert summary["rows"] == len(dataset)  # +1 insert, -1 delete
            assert client.query()["skyline_ids"] == expected
            assert client.compact() == {
                "compacted": False,
                "reason": "no pending mutations",
            }
        assert service.engine.compactions == 1

    def test_mutations_visible_across_clients(self, running_service, workload):
        _, dataset = workload
        _, host, port = running_service
        with ServiceClient(host, port) as writer:
            ids = writer.insert([_dominant_row(dataset)])
        with ServiceClient(host, port) as reader:
            assert ids[0] in reader.query()["skyline_ids"]


class TestMutationErrors:
    def test_wrong_arity_insert_rejected(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            bad = client.request({"op": "insert", "rows": [[1.0, 2.0]]})
            assert bad["ok"] is False
            assert "attribute values" in bad["error"]
            assert client.ping()["pong"] is True

    def test_empty_and_malformed_payloads_rejected(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            assert client.request({"op": "insert", "rows": []})["ok"] is False
            assert client.request({"op": "insert"})["ok"] is False
            assert client.request({"op": "delete", "ids": []})["ok"] is False
            # Booleans are ints in Python; the protocol refuses the footgun.
            bad = client.request({"op": "delete", "ids": [True]})
            assert bad["ok"] is False and "not an integer" in bad["error"]

    def test_unknown_delete_id_reported_as_error(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            bad = client.request({"op": "delete", "ids": [10**9]})
            assert bad["ok"] is False and "unknown record id" in bad["error"]

    def test_protocol_version_is_three(self, running_service):
        _, host, port = running_service
        assert PROTOCOL_VERSION == 3
        with ServiceClient(host, port) as client:
            assert client.ping()["protocol"] == PROTOCOL_VERSION
