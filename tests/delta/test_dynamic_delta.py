"""The dynamic plane over columnar sources and live deltas.

Pins the two contracts that anchor Figures 12-14 on the delta plane:

* building dTSS / SDC+ / fully-dynamic over an :class:`EncodedFrame` or an
  identity :class:`DeltaFrame` answers exactly like the record path; and
* incremental maintenance (:meth:`DTSSIndex.sync` rebuilding only dirty
  PO-value groups) answers exactly like a from-scratch rebuild after every
  step of an interleaved insert/delete sequence.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.runner import DynamicRunner
from repro.data.columns import EncodedFrame
from repro.data.dataset import Dataset
from repro.data.workloads import WorkloadSpec
from repro.delta.frame import DeltaFrame
from repro.dynamic import (
    DTSSIndex,
    FullyDynamicEngine,
    fully_dynamic_skyline,
    sdc_plus_dynamic_skyline,
)
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def spec():
    return WorkloadSpec(
        name="dynamic-delta-test",
        cardinality=120,
        num_total_order=2,
        num_partial_order=2,
        dag_height=3,
        dag_density=0.8,
        to_domain_size=20,
        seed=23,
    )


@pytest.fixture(scope="module")
def runner(spec):
    return DynamicRunner(spec, io_cost_seconds=0.0)


def _queries(runner, seeds=(1, 2, 3)):
    return [runner.query_mapping(seed) for seed in seeds]


def _random_row(schema, rng):
    dags = [a.dag for a in schema.partial_order_attributes]
    return tuple(float(rng.randint(0, 12)) for _ in range(schema.num_total_order)) + tuple(
        rng.choice(dag.values) for dag in dags
    )


class TestColumnarSourceParity:
    def test_dtss_identical_over_all_three_sources(self, spec, runner):
        _, dataset = spec.build()
        frame = EncodedFrame.from_dataset(dataset)
        by_source = [
            DTSSIndex(source, disk=None) for source in (dataset, frame, DeltaFrame(frame))
        ]
        for partial_orders in _queries(runner):
            expected = by_source[0].query(partial_orders).skyline_ids
            for index in by_source[1:]:
                assert index.query(partial_orders).skyline_ids == expected

    def test_sdc_dynamic_identical_over_identity_delta(self, spec, runner):
        _, dataset = spec.build()
        delta = DeltaFrame(EncodedFrame.from_dataset(dataset))
        for partial_orders in _queries(runner):
            record_path = sdc_plus_dynamic_skyline(dataset, partial_orders)
            delta_path = sdc_plus_dynamic_skyline(delta, partial_orders)
            assert delta_path.skyline_ids == record_path.skyline_ids

    def test_fully_dynamic_identical_over_identity_delta(self, spec, runner):
        schema, dataset = spec.build()
        delta = DeltaFrame(EncodedFrame.from_dataset(dataset))
        ideals = {a.name: 5.0 for a in schema.total_order_attributes}
        partial_orders = _queries(runner, seeds=(4,))[0]
        record_path = fully_dynamic_skyline(dataset, partial_orders, ideals)
        delta_path = fully_dynamic_skyline(delta, partial_orders, ideals)
        assert delta_path.skyline_ids == record_path.skyline_ids


class TestStableIdsThroughMutations:
    def _mutated_delta(self, spec, steps=12, seed=5):
        schema, dataset = spec.build()
        delta = DeltaFrame(EncodedFrame.from_dataset(dataset))
        rng = random.Random(seed)
        live = {record.id: tuple(record.values) for record in dataset.records}
        for _ in range(steps):
            if rng.random() < 0.5:
                row = _random_row(schema, rng)
                (new_id,) = delta.insert_rows([row])
                live[new_id] = row
            else:
                victim = rng.choice(sorted(live))
                delta.delete_ids([victim])
                del live[victim]
        return schema, delta, live

    def test_sdc_dynamic_returns_stable_ids(self, spec, runner):
        schema, delta, live = self._mutated_delta(spec)
        ordered = sorted(live)
        reference_data = Dataset(schema, [live[i] for i in ordered])
        for partial_orders in _queries(runner):
            remapped = sdc_plus_dynamic_skyline(delta, partial_orders).skyline_ids
            rebuilt = sdc_plus_dynamic_skyline(reference_data, partial_orders).skyline_ids
            assert remapped == [ordered[p] for p in rebuilt]

    def test_fully_dynamic_returns_stable_ids(self, spec, runner):
        schema, delta, live = self._mutated_delta(spec)
        ordered = sorted(live)
        reference_data = Dataset(schema, [live[i] for i in ordered])
        ideals = {a.name: 4.0 for a in schema.total_order_attributes}
        partial_orders = _queries(runner, seeds=(6,))[0]
        remapped = fully_dynamic_skyline(delta, partial_orders, ideals).skyline_ids
        rebuilt = fully_dynamic_skyline(reference_data, partial_orders, ideals).skyline_ids
        assert remapped == [ordered[p] for p in rebuilt]


class TestIncrementalSync:
    def test_sync_matches_rebuild_after_every_step(self, spec, runner):
        schema, dataset = spec.build()
        delta = DeltaFrame(EncodedFrame.from_dataset(dataset))
        incremental = DTSSIndex(delta)
        rng = random.Random(99)
        queries = _queries(runner)
        for step in range(15):
            if rng.random() < 0.55:
                delta.insert_rows([_random_row(schema, rng)])
            else:
                live_ids = [i for i in range(delta.next_id) if delta.is_live(i)]
                delta.delete_ids([rng.choice(live_ids)])
            applied = incremental.sync()
            assert applied["inserts"] + applied["deletes"] == 1
            rebuilt = DTSSIndex(delta)
            for partial_orders in queries:
                assert (
                    incremental.query(partial_orders).skyline_ids
                    == rebuilt.query(partial_orders).skyline_ids
                ), f"divergence at step {step}"

    def test_sync_skips_inserts_tombstoned_before_first_sync(self, spec):
        schema, dataset = spec.build()
        delta = DeltaFrame(EncodedFrame.from_dataset(dataset))
        index = DTSSIndex(delta)
        rng = random.Random(3)
        (doomed,) = delta.insert_rows([_random_row(schema, rng)])
        delta.delete_ids([doomed])
        applied = index.sync()
        assert applied["inserts"] == 0 and applied["deletes"] == 0
        # A second sync with nothing new is a no-op.
        assert index.sync()["groups_rebuilt"] == 0

    def test_sync_requires_a_delta_source(self, spec):
        _, dataset = spec.build()
        index = DTSSIndex(dataset)
        with pytest.raises(QueryError, match="DeltaFrame"):
            index.sync()


class TestFullyDynamicEngineInvalidation:
    def test_mutation_invalidates_cache(self, spec, runner):
        schema, dataset = spec.build()
        delta = DeltaFrame(EncodedFrame.from_dataset(dataset))
        engine = FullyDynamicEngine(delta)
        ideals = {a.name: 5.0 for a in schema.total_order_attributes}
        partial_orders = _queries(runner, seeds=(8,))[0]
        engine.query(partial_orders, ideals)
        engine.query(partial_orders, ideals)
        assert engine.hits == 1
        rng = random.Random(11)
        delta.insert_rows([_random_row(schema, rng)])
        engine.query(partial_orders, ideals)
        assert engine.hits == 1 and engine.misses == 2


class TestDynamicRunnerMutations:
    def test_methods_agree_after_runner_mutations(self, spec):
        runner = DynamicRunner(spec, io_cost_seconds=0.0)
        rng = random.Random(41)
        rows = [_random_row(runner.schema, rng) for _ in range(3)]
        new_ids = runner.mutate(inserts=rows, deletes=[0, 1])
        assert new_ids == [120, 121, 122]
        for seed in (1, 2):
            partial_orders = runner.query_mapping(seed)
            tss = runner.dtss_index.query(partial_orders).skyline_ids
            sdc = sdc_plus_dynamic_skyline(runner.delta, partial_orders).skyline_ids
            assert sorted(tss) == sorted(sdc)
            assert 0 not in sdc and 1 not in sdc
            # And the measured wrapper sees the same post-mutation skyline.
            for method in DynamicRunner.METHODS:
                run = runner.run(method, query_seed=seed)
                assert run.skyline_size == len(sdc)
