"""Unit tests for the per-PO-value group structures."""

import pytest

from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.dynamic.groups import GroupedDataset
from repro.exceptions import SchemaError
from repro.order.builders import antichain
from repro.skyline.dominance import dominates_vectors


@pytest.fixture
def grouped(flight_dataset):
    return GroupedDataset(flight_dataset)


class TestPartitioning:
    def test_requires_po_and_to_attributes(self, airline_dag):
        to_only = Schema([TotalOrderAttribute("x")])
        with pytest.raises(SchemaError):
            GroupedDataset(Dataset(to_only, [(1,)]))
        po_only = Schema([PartialOrderAttribute("airline", airline_dag)])
        with pytest.raises(SchemaError):
            GroupedDataset(Dataset(po_only, [("a",)]))

    def test_one_group_per_po_value_combination(self, grouped, flight_dataset):
        expected = {flight_dataset.schema.partial_values(r.values) for r in flight_dataset}
        assert set(grouped.groups) == expected
        assert grouped.num_groups == len(expected)

    def test_groups_partition_all_points(self, grouped):
        total = sum(len(members) for members in grouped.groups.values())
        assert total == len(grouped.points)

    def test_points_carry_canonical_to_values(self, grouped, flight_dataset):
        point = grouped.points[0]
        record = flight_dataset[point.record_ids[0]]
        assert point.to_values == flight_dataset.schema.canonical_to_values(record.values)

    def test_duplicates_collapse_into_one_point(self, flight_schema):
        data = Dataset(flight_schema, [(1, 0, "a"), (1, 0, "a"), (2, 0, "a")])
        grouped = GroupedDataset(data)
        assert len(grouped.points) == 2
        assert grouped.record_ids_for([0]) == [0, 1]

    def test_group_trees_index_their_members(self, grouped):
        for key, members in grouped.groups.items():
            tree = grouped.group_trees[key]
            assert sorted(e.payload for e in tree.all_entries()) == sorted(p.index for p in members)

    def test_multiple_po_attributes(self):
        schema = Schema(
            [
                TotalOrderAttribute("x"),
                PartialOrderAttribute("p", antichain(["u", "v"])),
                PartialOrderAttribute("q", antichain(["m", "n"])),
            ]
        )
        data = Dataset(schema, [(1, "u", "m"), (2, "u", "n"), (3, "v", "m"), (4, "u", "m")])
        grouped = GroupedDataset(data)
        assert grouped.num_groups == 3
        assert ("u", "m") in grouped.groups


class TestLocalSkylines:
    def test_precompute_at_build_time(self, flight_dataset):
        grouped = GroupedDataset(flight_dataset, precompute_local_skylines=True)
        assert grouped.local_skylines is not None

    def test_ensure_local_skylines_memoizes(self, grouped):
        first = grouped.ensure_local_skylines()
        assert grouped.ensure_local_skylines() is first

    def test_local_skyline_is_the_to_skyline_of_the_group(self, flight_dataset):
        grouped = GroupedDataset(flight_dataset, precompute_local_skylines=True)
        for key, members in grouped.groups.items():
            local = grouped.local_skylines[key]
            for member in members:
                dominated = any(
                    dominates_vectors(other.to_values, member.to_values) for other in members
                )
                assert (member in local) == (not dominated)

    def test_local_skyline_points_are_mutually_incomparable(self, flight_dataset):
        grouped = GroupedDataset(flight_dataset, precompute_local_skylines=True)
        for local in grouped.local_skylines.values():
            for a in local:
                for b in local:
                    if a is not b:
                        assert not dominates_vectors(a.to_values, b.to_values)
