"""Unit tests for the dynamic query-result cache."""

import pytest

from repro.dynamic.cache import DynamicQueryCache, canonical_query_key
from repro.exceptions import QueryError
from repro.order.dag import PartialOrderDAG
from repro.skyline.base import SkylineResult, SkylineStats


def make_result(ids):
    return SkylineResult(skyline_ids=list(ids), stats=SkylineStats())


@pytest.fixture
def hasse_and_closure():
    hasse = PartialOrderDAG("abc", [("a", "b"), ("b", "c")])
    closure = PartialOrderDAG("abc", [("a", "b"), ("b", "c"), ("a", "c")])
    return hasse, closure


class TestCanonicalKey:
    def test_equivalent_specifications_share_a_key(self, hasse_and_closure):
        hasse, closure = hasse_and_closure
        assert canonical_query_key({"p": hasse}, ["p"]) == canonical_query_key({"p": closure}, ["p"])

    def test_different_preferences_differ(self, hasse_and_closure):
        hasse, _ = hasse_and_closure
        other = PartialOrderDAG("abc", [("c", "b")])
        assert canonical_query_key({"p": hasse}, ["p"]) != canonical_query_key({"p": other}, ["p"])

    def test_sequence_and_mapping_agree(self, hasse_and_closure):
        hasse, _ = hasse_and_closure
        assert canonical_query_key({"p": hasse}, ["p"]) == canonical_query_key([hasse], ["p"])

    def test_missing_attribute_raises(self, hasse_and_closure):
        hasse, _ = hasse_and_closure
        with pytest.raises(QueryError):
            canonical_query_key({"q": hasse}, ["p"])
        with pytest.raises(QueryError):
            canonical_query_key([hasse, hasse], ["p"])


class TestCache:
    def test_put_get_round_trip(self, hasse_and_closure):
        hasse, closure = hasse_and_closure
        cache = DynamicQueryCache()
        cache.put({"p": hasse}, ["p"], make_result([1, 2]))
        hit = cache.get({"p": closure}, ["p"])
        assert hit is not None and hit.skyline_ids == [1, 2]
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self, hasse_and_closure):
        hasse, _ = hasse_and_closure
        cache = DynamicQueryCache()
        assert cache.get({"p": hasse}, ["p"]) is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_lru_eviction(self):
        cache = DynamicQueryCache(capacity=2)
        dags = [PartialOrderDAG("ab", [("a", "b")] if i % 2 else []) for i in range(2)]
        third = PartialOrderDAG("ab", [("b", "a")])
        cache.put({"p": dags[0]}, ["p"], make_result([0]))
        cache.put({"p": dags[1]}, ["p"], make_result([1]))
        cache.put({"p": third}, ["p"], make_result([2]))
        assert len(cache) == 2
        assert cache.get({"p": dags[0]}, ["p"]) is None

    def test_invalid_capacity(self):
        with pytest.raises(QueryError):
            DynamicQueryCache(capacity=0)

    def test_hit_rate(self, hasse_and_closure):
        hasse, _ = hasse_and_closure
        cache = DynamicQueryCache()
        cache.put({"p": hasse}, ["p"], make_result([1]))
        cache.get({"p": hasse}, ["p"])
        cache.get({"p": PartialOrderDAG("abc", [])}, ["p"])
        assert cache.hit_rate == pytest.approx(0.5)
