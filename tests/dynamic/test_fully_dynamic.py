"""Unit tests for fully dynamic skyline queries (preferences + ideal TO values)."""

import pytest

from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.dynamic.fully_dynamic import (
    FullyDynamicEngine,
    distance_transformed_dataset,
    fully_dynamic_skyline,
)
from repro.exceptions import QueryError
from repro.order.builders import airline_preference_dag, airline_preference_dag_second
from repro.order.dag import PartialOrderDAG
from repro.skyline.bruteforce import brute_force_skyline


def reference_skyline(dataset, partial_orders, ideal_values):
    """Oracle: brute force over the distance-transformed dataset."""
    derived = distance_transformed_dataset(dataset, partial_orders, ideal_values)
    return frozenset(brute_force_skyline(derived).skyline_ids)


@pytest.fixture
def tickets(flight_dataset):
    return flight_dataset


class TestDistanceTransform:
    def test_to_values_become_distances(self, tickets, airline_dag):
        orders = {"airline": airline_dag}
        ideals = {"price": 1000.0, "stops": 1.0}
        derived = distance_transformed_dataset(tickets, orders, ideals)
        assert derived[0].values[0] == pytest.approx(800.0)   # |1800 - 1000|
        assert derived[0].values[1] == pytest.approx(1.0)     # |0 - 1|
        assert derived[0].values[2] == "a"

    def test_po_attributes_adopt_query_dags(self, tickets):
        query_dag = airline_preference_dag_second()
        derived = distance_transformed_dataset(
            tickets, {"airline": query_dag}, {"price": 0.0, "stops": 0.0}
        )
        assert derived.schema["airline"].dag is query_dag

    def test_max_attributes_become_distance_minimization(self, airline_dag):
        schema = Schema(
            [TotalOrderAttribute("rating", best="max"), PartialOrderAttribute("airline", airline_dag)]
        )
        dataset = Dataset(schema, [(9, "a"), (5, "a")])
        derived = distance_transformed_dataset(dataset, {"airline": airline_dag}, {"rating": 5.0})
        assert derived.schema["rating"].best == "min"
        assert derived[0].values[0] == pytest.approx(4.0)
        assert derived[1].values[0] == pytest.approx(0.0)


class TestFullyDynamicSkyline:
    def test_matches_reference_on_flight_data(self, tickets):
        orders = {"airline": airline_preference_dag()}
        ideals = {"price": 1200.0, "stops": 1.0}
        truth = reference_skyline(tickets, orders, ideals)
        result = fully_dynamic_skyline(tickets, orders, ideals)
        assert frozenset(result.skyline_ids) == truth

    def test_ideal_at_origin_reduces_to_ordinary_dynamic_query(self, tickets):
        """With ideal values at the domain minimum, distances equal the raw values."""
        from repro.dynamic.dtss import dtss_skyline

        orders = {"airline": airline_preference_dag_second()}
        ideals = {"price": 0.0, "stops": 0.0}
        full = fully_dynamic_skyline(tickets, orders, ideals)
        ordinary = dtss_skyline(tickets, orders)
        assert frozenset(full.skyline_ids) == frozenset(ordinary.skyline_ids)

    def test_sequence_specifications(self, tickets):
        orders = [airline_preference_dag()]
        ideals = [1200.0, 1.0]
        by_sequence = fully_dynamic_skyline(tickets, orders, ideals)
        by_mapping = fully_dynamic_skyline(
            tickets, {"airline": airline_preference_dag()}, {"price": 1200.0, "stops": 1.0}
        )
        assert frozenset(by_sequence.skyline_ids) == frozenset(by_mapping.skyline_ids)

    def test_different_ideals_change_the_result(self, tickets):
        orders = {"airline": airline_preference_dag()}
        cheap = fully_dynamic_skyline(tickets, orders, {"price": 0.0, "stops": 0.0})
        midrange = fully_dynamic_skyline(tickets, orders, {"price": 1400.0, "stops": 1.0})
        assert frozenset(cheap.skyline_ids) != frozenset(midrange.skyline_ids)

    def test_validation_errors(self, tickets):
        orders = {"airline": airline_preference_dag()}
        with pytest.raises(QueryError):
            fully_dynamic_skyline(tickets, {}, {"price": 0.0, "stops": 0.0})
        with pytest.raises(QueryError):
            fully_dynamic_skyline(tickets, orders, {"price": 0.0})
        with pytest.raises(QueryError):
            fully_dynamic_skyline(tickets, orders, [1.0, 2.0, 3.0])

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_reference_on_synthetic_data(self, seed, small_workload):
        _, dataset = small_workload
        dag = dataset.schema.partial_order_attributes[0].dag
        values = list(dag.values)
        orders = {"po1": PartialOrderDAG(values, list(zip(values, values[1:])))}
        ideals = {"to1": 30.0 + seed * 10, "to2": 10.0}
        truth = reference_skyline(dataset, orders, ideals)
        result = fully_dynamic_skyline(dataset, orders, ideals)
        assert frozenset(result.skyline_ids) == truth


class TestFullyDynamicEngine:
    def test_cache_hits_for_repeated_queries(self, tickets):
        engine = FullyDynamicEngine(tickets)
        orders = {"airline": airline_preference_dag()}
        ideals = {"price": 1200.0, "stops": 1.0}
        first = engine.query(orders, ideals)
        second = engine.query(orders, ideals)
        assert second is first
        assert engine.hits == 1 and engine.misses == 1
        assert engine.hit_rate == pytest.approx(0.5)

    def test_equivalent_preference_specifications_share_cache_entries(self, tickets):
        engine = FullyDynamicEngine(tickets)
        hasse = PartialOrderDAG("abcd", [("a", "b"), ("b", "c")])
        closure = PartialOrderDAG("abcd", [("a", "b"), ("b", "c"), ("a", "c")])
        ideals = {"price": 500.0, "stops": 0.0}
        engine.query({"airline": hasse}, ideals)
        engine.query({"airline": closure}, ideals)
        assert engine.hits == 1

    def test_cache_eviction(self, tickets):
        engine = FullyDynamicEngine(tickets, cache_capacity=1)
        orders = {"airline": airline_preference_dag()}
        engine.query(orders, {"price": 0.0, "stops": 0.0})
        engine.query(orders, {"price": 100.0, "stops": 0.0})
        engine.query(orders, {"price": 0.0, "stops": 0.0})
        assert engine.misses == 3

    def test_invalid_capacity(self, tickets):
        with pytest.raises(QueryError):
            FullyDynamicEngine(tickets, cache_capacity=0)
