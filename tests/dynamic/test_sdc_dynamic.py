"""Unit tests for the dynamic SDC+ adaptation (the Section VI-C baseline)."""

import pytest

from repro.data.workloads import WorkloadSpec
from repro.dynamic.dtss import dtss_skyline
from repro.dynamic.sdc_dynamic import (
    REPARTITION_READ_PASSES,
    REPARTITION_WRITE_PASSES,
    sdc_plus_dynamic_skyline,
)
from repro.exceptions import QueryError
from repro.index.pager import DiskSimulator
from repro.order.dag import PartialOrderDAG
from repro.skyline.bruteforce import brute_force_skyline


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        name="sdcdyn-unit",
        distribution="anticorrelated",
        cardinality=200,
        num_total_order=3,
        num_partial_order=1,
        dag_height=3,
        dag_density=1.0,
        to_domain_size=40,
        seed=23,
    )
    return spec.build()


@pytest.fixture(scope="module")
def query(workload):
    schema, _ = workload
    dag = schema.partial_order_attributes[0].dag
    values = list(dag.values)
    # A simple chain over the data values: a deterministic, valid dynamic query.
    return {"po1": PartialOrderDAG(values, list(zip(values, values[1:])))}


class TestCorrectness:
    def test_matches_static_recomputation(self, workload, query):
        schema, dataset = workload
        static_schema = schema.replace_partial_order(query)
        truth = frozenset(brute_force_skyline(dataset.with_schema(static_schema)).skyline_ids)
        result = sdc_plus_dynamic_skyline(dataset, query)
        assert frozenset(result.skyline_ids) == truth

    def test_agrees_with_dtss(self, workload, query):
        _, dataset = workload
        baseline = sdc_plus_dynamic_skyline(dataset, query)
        dtss = dtss_skyline(dataset, query)
        assert frozenset(baseline.skyline_ids) == frozenset(dtss.skyline_ids)

    def test_sequence_specification(self, workload, query):
        _, dataset = workload
        result = sdc_plus_dynamic_skyline(dataset, list(query.values()))
        assert frozenset(result.skyline_ids) == frozenset(
            sdc_plus_dynamic_skyline(dataset, query).skyline_ids
        )

    def test_missing_attribute_raises(self, workload):
        _, dataset = workload
        with pytest.raises(QueryError):
            sdc_plus_dynamic_skyline(dataset, {})

    def test_wrong_sequence_length_raises(self, workload, query):
        _, dataset = workload
        with pytest.raises(QueryError):
            sdc_plus_dynamic_skyline(dataset, list(query.values()) * 2)


class TestCostModel:
    def test_repartition_passes_are_charged(self, workload, query):
        _, dataset = workload
        result = sdc_plus_dynamic_skyline(dataset, query, records_per_page=50)
        data_pages = -(-len(dataset) // 50)
        assert result.stats.io_reads >= REPARTITION_READ_PASSES * data_pages
        assert result.stats.io_writes >= REPARTITION_WRITE_PASSES * data_pages

    def test_index_rebuild_writes_are_charged_with_a_disk(self, workload, query):
        _, dataset = workload
        disk = DiskSimulator()
        result = sdc_plus_dynamic_skyline(dataset, query, disk=disk)
        # Bulk-loading the per-stratum R-trees writes at least one page each.
        assert result.stats.io_writes > REPARTITION_WRITE_PASSES * (len(dataset) // 100)

    def test_per_query_cost_exceeds_dtss(self, workload, query):
        """The headline of Section VI-C: rebuilding per query is far more expensive."""
        _, dataset = workload
        disk = DiskSimulator()
        baseline = sdc_plus_dynamic_skyline(dataset, query, disk=disk)
        dtss = dtss_skyline(dataset, query, disk=DiskSimulator())
        assert baseline.stats.total_ios > dtss.stats.total_ios
