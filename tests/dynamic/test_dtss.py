"""Unit tests for the dTSS dynamic skyline algorithm."""

import pytest

from repro.data.workloads import WorkloadSpec
from repro.dynamic.dtss import DTSSIndex, dtss_skyline
from repro.exceptions import QueryError
from repro.index.pager import DiskSimulator
from repro.order.builders import random_dag
from repro.order.dag import PartialOrderDAG
from repro.order.lattice import lattice_domain
from repro.skyline.bruteforce import brute_force_skyline


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        name="dtss-unit",
        distribution="independent",
        cardinality=220,
        num_total_order=2,
        num_partial_order=1,
        dag_height=4,
        dag_density=0.8,
        to_domain_size=40,
        seed=17,
    )
    return spec.build()


def query_order_for(schema, seed):
    """A fresh partial order over the same value domain as the data DAG."""
    dag = schema.partial_order_attributes[0].dag
    sampled = lattice_domain(6, 0.9, seed=seed)
    # Restrict a differently-shaped lattice to the data's values when possible,
    # otherwise fall back to a random order over the same values.
    if all(value in sampled for value in dag.values):
        return sampled.restrict(dag.values)
    return random_dag(len(dag.values), edge_probability=0.2, seed=seed).relabel(
        dict(zip([f"v{i}" for i in range(len(dag.values))], dag.values))
    )


def ground_truth(dataset, partial_orders):
    schema = dataset.schema.replace_partial_order(partial_orders)
    return frozenset(brute_force_skyline(dataset.with_schema(schema, validate=False)).skyline_ids)


class TestCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_static_recomputation(self, workload, seed):
        schema, dataset = workload
        query = {"po1": query_order_for(schema, seed)}
        truth = ground_truth(dataset, query)
        assert frozenset(dtss_skyline(dataset, query).skyline_ids) == truth

    def test_list_based_and_rtree_checks_agree(self, workload):
        schema, dataset = workload
        query = {"po1": query_order_for(schema, 4)}
        with_tree = dtss_skyline(dataset, query, use_virtual_rtree=True)
        with_list = dtss_skyline(dataset, query, use_virtual_rtree=False)
        assert frozenset(with_tree.skyline_ids) == frozenset(with_list.skyline_ids)

    def test_local_skyline_optimization_agrees(self, workload):
        schema, dataset = workload
        query = {"po1": query_order_for(schema, 5)}
        base = dtss_skyline(dataset, query)
        optimized = dtss_skyline(dataset, query, use_local_skylines=True)
        assert frozenset(base.skyline_ids) == frozenset(optimized.skyline_ids)

    def test_partial_orders_as_sequence(self, workload):
        schema, dataset = workload
        query = query_order_for(schema, 6)
        by_name = dtss_skyline(dataset, {"po1": query})
        by_position = dtss_skyline(dataset, [query])
        assert frozenset(by_name.skyline_ids) == frozenset(by_position.skyline_ids)

    def test_empty_preferences_make_every_group_best(self, workload):
        schema, dataset = workload
        dag = schema.partial_order_attributes[0].dag
        no_preferences = PartialOrderDAG(dag.values, [])
        truth = ground_truth(dataset, {"po1": no_preferences})
        assert frozenset(dtss_skyline(dataset, {"po1": no_preferences}).skyline_ids) == truth

    def test_total_order_query(self, workload):
        schema, dataset = workload
        dag = schema.partial_order_attributes[0].dag
        values = list(dag.values)
        total_order = PartialOrderDAG(values, list(zip(values, values[1:])))
        truth = ground_truth(dataset, {"po1": total_order})
        assert frozenset(dtss_skyline(dataset, {"po1": total_order}).skyline_ids) == truth


class TestIndexReuse:
    def test_index_answers_many_queries(self, workload):
        schema, dataset = workload
        index = DTSSIndex(dataset)
        for seed in (7, 8, 9):
            query = {"po1": query_order_for(schema, seed)}
            truth = ground_truth(dataset, query)
            assert frozenset(index.query(query).skyline_ids) == truth

    def test_group_structures_are_not_rebuilt_between_queries(self, workload):
        schema, dataset = workload
        disk = DiskSimulator()
        index = DTSSIndex(dataset, disk=disk)
        build_writes = disk.stats.writes
        index.query({"po1": query_order_for(schema, 10)})
        index.query({"po1": query_order_for(schema, 11)})
        assert disk.stats.writes == build_writes  # queries only read

    def test_queries_charge_only_traversal_reads(self, workload):
        schema, dataset = workload
        disk = DiskSimulator()
        index = DTSSIndex(dataset, disk=disk)
        result = index.query({"po1": query_order_for(schema, 12)})
        assert result.stats.io_reads >= 0
        assert result.stats.io_writes == 0


class TestValidation:
    def test_missing_attribute_raises(self, workload):
        _, dataset = workload
        index = DTSSIndex(dataset)
        with pytest.raises(QueryError):
            index.query({})

    def test_wrong_number_of_sequence_orders(self, workload):
        schema, dataset = workload
        index = DTSSIndex(dataset)
        with pytest.raises(QueryError):
            index.query([query_order_for(schema, 1), query_order_for(schema, 2)])

    def test_query_domain_must_cover_data_values(self, workload):
        _, dataset = workload
        index = DTSSIndex(dataset)
        with pytest.raises(QueryError):
            index.query({"po1": PartialOrderDAG([999999], [])})


class TestProgressiveness:
    def test_results_are_streamed_per_point(self, workload):
        schema, dataset = workload
        query = {"po1": query_order_for(schema, 13)}
        result = dtss_skyline(dataset, query)
        distinct = {dataset[i].values for i in result.skyline_ids}
        assert len(result.progress) == len(distinct)
