"""Unit tests for the BBS+, SDC and SDC+ baselines."""

import pytest

from repro.baselines.bbs_plus import bbs_plus_skyline
from repro.baselines.sdc import sdc_skyline
from repro.baselines.sdc_plus import sdc_plus_skyline
from repro.baselines.transform import BaselineMapping
from repro.data.workloads import WorkloadSpec
from repro.index.pager import DiskSimulator
from repro.skyline.bruteforce import brute_force_skyline

ALGORITHMS = {
    "bbs+": bbs_plus_skyline,
    "sdc": sdc_skyline,
    "sdc+": sdc_plus_skyline,
}


@pytest.fixture(scope="module", params=["independent", "anticorrelated"])
def workload(request):
    spec = WorkloadSpec(
        name="baseline-unit",
        distribution=request.param,
        cardinality=220,
        num_total_order=2,
        num_partial_order=1,
        dag_height=4,
        dag_density=0.7,
        to_domain_size=40,
        seed=31,
    )
    schema, dataset = spec.build()
    truth = frozenset(brute_force_skyline(dataset).skyline_ids)
    return dataset, truth


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_matches_brute_force(self, workload, name):
        dataset, truth = workload
        result = ALGORITHMS[name](dataset)
        assert frozenset(result.skyline_ids) == truth

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_flight_example(self, flight_dataset, name):
        result = ALGORITHMS[name](flight_dataset)
        assert frozenset(result.skyline_ids) == {0, 4, 5, 8, 9}

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_small_fanout(self, workload, name):
        dataset, truth = workload
        result = ALGORITHMS[name](dataset, max_entries=4)
        assert frozenset(result.skyline_ids) == truth

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_prebuilt_mapping_reused(self, workload, name):
        dataset, truth = workload
        mapping = BaselineMapping(dataset)
        result = ALGORITHMS[name](dataset, mapping=mapping)
        assert frozenset(result.skyline_ids) == truth

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_duplicates_are_reported(self, flight_dataset, name):
        from repro.data.dataset import Dataset

        rows = [(1000, 1, "b"), (1000, 1, "b"), (500, 2, "d")]
        dataset = Dataset(flight_dataset.schema, rows)
        result = ALGORITHMS[name](dataset)
        assert frozenset(result.skyline_ids) == {0, 1, 2}


class TestBehaviour:
    def test_bbs_plus_is_not_progressive(self, workload):
        dataset, _ = workload
        result = bbs_plus_skyline(dataset)
        # All progress events are emitted at the very end (cross-examination),
        # so the first and last event are essentially simultaneous.
        assert result.progress[0].dominance_checks > 0

    def test_sdc_reports_completely_covered_points_early(self, workload):
        dataset, truth = workload
        result = sdc_skyline(dataset)
        assert frozenset(result.skyline_ids) == truth
        assert len(result.progress) == len(
            {dataset[i].values for i in result.skyline_ids}
        )

    def test_sdc_plus_false_hit_elimination_is_counted(self, workload):
        dataset, _ = workload
        result = sdc_plus_skyline(dataset)
        assert result.stats.false_hits_removed >= 0
        assert result.stats.dominance_checks > 0

    def test_sdc_plus_processes_strata_with_own_trees(self, workload):
        dataset, truth = workload
        mapping = BaselineMapping(dataset)
        trees = {
            level: mapping.build_rtree([p.index for p in points], max_entries=8)
            for level, points in mapping.strata().items()
        }
        result = sdc_plus_skyline(dataset, mapping=mapping, stratum_trees=trees)
        assert frozenset(result.skyline_ids) == truth

    def test_io_accounting(self, workload):
        dataset, _ = workload
        disk = DiskSimulator()
        result = sdc_plus_skyline(dataset, disk=disk, max_entries=8)
        assert result.stats.io_reads > 0
        assert result.stats.total_seconds >= result.stats.io_seconds

    def test_m_dominance_methods_pay_for_false_hits_that_tss_never_has(self):
        """The paper's headline: the incomplete mapping forces the baselines to
        find and evict false hits, work that exact t-dominance never needs."""
        from repro.core.stss import stss_skyline

        spec = WorkloadSpec(
            name="false-hits",
            distribution="anticorrelated",
            cardinality=300,
            num_total_order=2,
            num_partial_order=1,
            dag_height=5,
            dag_density=1.0,
            to_domain_size=30,
            seed=41,
        )
        _, dataset = spec.build()
        bbs_plus = bbs_plus_skyline(dataset)
        tss = stss_skyline(dataset, use_virtual_rtree=False)
        assert frozenset(bbs_plus.skyline_ids) == frozenset(tss.skyline_ids)
        # The m-dominance candidate list contains false hits that must be
        # cross-examined away; exact t-dominance never produces any.
        assert bbs_plus.stats.false_hits_removed > 0
        assert tss.stats.false_hits_removed == 0
