"""Unit tests for the Chan et al. baseline transformation and m-dominance."""

import pytest

from repro.baselines.transform import BaselineMapping
from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.exceptions import SchemaError
from repro.order.builders import paper_example_dag
from repro.skyline.dominance import dominates_records


@pytest.fixture
def figure3_dataset():
    schema = Schema([TotalOrderAttribute("A1"), PartialOrderAttribute("A2", paper_example_dag())])
    rows = [
        (2, "c"), (3, "d"), (1, "h"), (8, "a"), (6, "e"), (7, "c"), (9, "b"),
        (4, "i"), (2, "f"), (3, "g"), (5, "g"), (7, "f"), (9, "h"),
    ]
    return Dataset(schema, rows)


class TestMapping:
    def test_requires_po_attribute(self):
        schema = Schema([TotalOrderAttribute("x")])
        with pytest.raises(SchemaError):
            BaselineMapping(Dataset(schema, [(1,)]))

    def test_dimensionality_is_to_plus_two_per_po(self, figure3_dataset):
        mapping = BaselineMapping(figure3_dataset)
        assert mapping.dimensions == 1 + 2
        assert all(len(point.coords) == 3 for point in mapping.points)

    def test_duplicates_are_grouped(self, flight_dataset, flight_schema):
        duplicated = Dataset(flight_schema, [flight_dataset[0].values] * 3 + [flight_dataset[8].values])
        mapping = BaselineMapping(duplicated)
        assert len(mapping) == 2
        assert mapping.points[0].record_ids == (0, 1, 2)
        assert mapping.record_ids_for([0]) == [0, 1, 2]

    def test_uncovered_levels_match_encoding(self, figure3_dataset):
        mapping = BaselineMapping(figure3_dataset)
        encoding = mapping.encodings[0]
        for point in mapping.points:
            assert point.uncovered_level == encoding.uncovered[point.po_values[0]]
        assert mapping.max_uncovered_level >= 1

    def test_strata_are_sorted_and_partition_points(self, figure3_dataset):
        mapping = BaselineMapping(figure3_dataset)
        strata = mapping.strata()
        assert list(strata) == sorted(strata)
        flattened = [p.index for members in strata.values() for p in members]
        assert sorted(flattened) == list(range(len(mapping)))

    def test_build_rtree_subset(self, figure3_dataset):
        mapping = BaselineMapping(figure3_dataset)
        subset = [0, 2, 4]
        tree = mapping.build_rtree(subset, max_entries=4)
        assert sorted(e.payload for e in tree.all_entries()) == subset


class TestMDominance:
    def test_m_dominance_implies_actual_dominance(self, figure3_dataset):
        mapping = BaselineMapping(figure3_dataset)
        for p in mapping.points:
            for q in mapping.points:
                if p is not q and mapping.m_dominates(p, q):
                    assert mapping.actually_dominates(p, q)

    def test_m_dominance_misses_some_preferences(self, figure3_dataset):
        """The incomplete mapping necessarily misses dominances (false skyline hits)."""
        mapping = BaselineMapping(figure3_dataset)
        missed = [
            (p.index, q.index)
            for p in mapping.points
            for q in mapping.points
            if p is not q and mapping.actually_dominates(p, q) and not mapping.m_dominates(p, q)
        ]
        assert missed

    def test_actual_dominance_matches_record_dominance(self, figure3_dataset):
        mapping = BaselineMapping(figure3_dataset)
        for p in mapping.points:
            for q in mapping.points:
                if p is q:
                    continue
                expected = dominates_records(
                    figure3_dataset.schema,
                    figure3_dataset[p.record_ids[0]],
                    figure3_dataset[q.record_ids[0]],
                )
                assert mapping.actually_dominates(p, q) == expected

    def test_completely_covered_points_have_exact_m_dominance(self, figure3_dataset):
        """For completely covered targets, actual dominance implies m-dominance."""
        mapping = BaselineMapping(figure3_dataset)
        for p in mapping.points:
            for q in mapping.points:
                if p is not q and q.completely_covered and mapping.actually_dominates(p, q):
                    assert mapping.m_dominates(p, q)

    def test_weak_corner_dominance(self, figure3_dataset):
        mapping = BaselineMapping(figure3_dataset)
        point = mapping.points[0]
        assert mapping.weakly_m_dominates_corner(point, point.coords)
        worse_corner = tuple(c + 1 for c in point.coords)
        assert mapping.weakly_m_dominates_corner(point, worse_corner)
        better_corner = tuple(c - 1 for c in point.coords)
        assert not mapping.weakly_m_dominates_corner(point, better_corner)

    def test_m_skyline_is_a_superset_of_the_true_skyline(self, figure3_dataset):
        from repro.skyline.bruteforce import brute_force_skyline

        mapping = BaselineMapping(figure3_dataset)
        m_skyline = {
            p.index
            for p in mapping.points
            if not any(mapping.m_dominates(q, p) for q in mapping.points if q is not p)
        }
        truth = frozenset(brute_force_skyline(figure3_dataset).skyline_ids)
        truth_points = {
            p.index for p in mapping.points if any(r in truth for r in p.record_ids)
        }
        assert truth_points <= m_skyline
