"""RuntimeConfig resolution: precedence, env errors and deprecation shims."""

from __future__ import annotations

import pytest

from repro.config import (
    FRAME_ENV_VAR,
    KERNEL_ENV_VAR,
    MERGE_ENV_VAR,
    MMAP_ENV_VAR,
    STORE_ENV_VAR,
    WORKERS_ENV_VAR,
    RuntimeConfig,
    env_text,
    resolve_merge_strategy,
    resolve_mmap_mode,
    resolve_workers,
)
from repro.exceptions import ExperimentError


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for variable in (
        KERNEL_ENV_VAR,
        FRAME_ENV_VAR,
        WORKERS_ENV_VAR,
        MERGE_ENV_VAR,
        STORE_ENV_VAR,
        MMAP_ENV_VAR,
    ):
        monkeypatch.delenv(variable, raising=False)


class TestPrecedence:
    def test_defaults(self):
        config = RuntimeConfig.resolve()
        assert config.kernel is None and config.index is None
        assert config.workers == 0
        assert config.merge == "sort-merge"
        assert config.store is None
        assert config.prefilter is True

    def test_env_fills_unset_fields(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "purepython")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(MERGE_ENV_VAR, "all-pairs")
        monkeypatch.setenv(STORE_ENV_VAR, "/tmp/env.rpro")
        monkeypatch.setenv(MMAP_ENV_VAR, "off")
        config = RuntimeConfig.resolve()
        assert config.kernel == "purepython"
        assert config.workers == 3
        assert config.merge == "all-pairs"
        assert config.store == "/tmp/env.rpro"
        assert config.mmap is False

    def test_explicit_arguments_beat_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(MERGE_ENV_VAR, "all-pairs")
        monkeypatch.setenv(STORE_ENV_VAR, "/tmp/env.rpro")
        config = RuntimeConfig.resolve(
            workers=1, merge="sort-merge", store="/tmp/flag.rpro"
        )
        assert config.workers == 1
        assert config.merge == "sort-merge"
        assert config.store == "/tmp/flag.rpro"

    def test_with_overrides_replaces_fields(self):
        config = RuntimeConfig.resolve(workers=2)
        changed = config.with_overrides(workers=5, store="/tmp/x.rpro")
        assert changed.workers == 5 and changed.store == "/tmp/x.rpro"
        assert config.workers == 2  # frozen original untouched

    def test_engine_options_round_trip(self):
        config = RuntimeConfig.resolve(
            workers=2, shards=4, merge="all-pairs", prefilter=False, cache_size=7
        )
        options = config.engine_options()
        assert options["workers"] == 2
        assert options["num_shards"] == 4
        assert options["merge_strategy"] == "all-pairs"
        assert options["prefilter"] is False
        assert options["cache_size"] == 7
        assert "mmap" in options

    def test_blank_env_values_are_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "   ")
        assert env_text(WORKERS_ENV_VAR) is None
        assert RuntimeConfig.resolve().workers == 0


class TestErrors:
    @pytest.mark.parametrize("bad", ["lots", "-2", "1.5"])
    def test_bad_workers_env_names_the_variable(self, monkeypatch, bad):
        monkeypatch.setenv(WORKERS_ENV_VAR, bad)
        with pytest.raises(ExperimentError, match=WORKERS_ENV_VAR):
            resolve_workers()

    def test_bad_merge_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(MERGE_ENV_VAR, "zipper")
        with pytest.raises(ExperimentError, match=MERGE_ENV_VAR):
            resolve_merge_strategy()

    def test_bad_mmap_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(MMAP_ENV_VAR, "sideways")
        with pytest.raises(ExperimentError, match=MMAP_ENV_VAR):
            resolve_mmap_mode()

    def test_explicit_bad_value_does_not_blame_env(self):
        with pytest.raises(ExperimentError) as excinfo:
            resolve_workers("many")
        assert WORKERS_ENV_VAR not in str(excinfo.value)


class TestDeprecationShims:
    """The historical import paths keep working and agree with repro.config."""

    def test_executor_shims(self, monkeypatch):
        from repro.parallel import executor

        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert executor.resolve_workers() == resolve_workers() == 4
        assert executor.resolve_merge_strategy("all-pairs") == "all-pairs"
        assert executor.WORKERS_ENV_VAR == WORKERS_ENV_VAR
        assert executor.MERGE_ENV_VAR == MERGE_ENV_VAR

    def test_columns_shim(self, monkeypatch):
        from repro.config import resolve_frame_mode
        from repro.data import columns

        monkeypatch.setenv(FRAME_ENV_VAR, "off")
        assert columns.resolve_frame_mode() is resolve_frame_mode() is False
        assert columns.FRAME_ENV_VAR == FRAME_ENV_VAR

    def test_env_reads_live_only_in_config(self):
        """The library funnels every REPRO_* read through repro.config.

        Asserted through the reprolint ``env-gateway`` rule, which sees the
        AST (``from os import environ`` aliases included) rather than a
        substring scan.
        """
        import pathlib
        import sys

        import repro

        package_root = pathlib.Path(repro.__file__).parent
        tools_dir = package_root.parents[1] / "tools"
        if str(tools_dir) not in sys.path:
            sys.path.insert(0, str(tools_dir))
        from reprolint import run_paths

        report = run_paths([package_root], rules=["env-gateway"])
        assert [f.render() for f in report.findings] == []
        assert report.modules_checked > 50
