"""Unit tests for the R-tree (bulk loading, insertion, queries, traversal)."""

import random

import pytest

from repro.exceptions import IndexError_
from repro.index.geometry import Rect
from repro.index.pager import DiskSimulator
from repro.index.rtree import NodeRef, RTree, RTreeEntry


def random_points(n, dims=2, seed=0, extent=100.0):
    rng = random.Random(seed)
    return [tuple(rng.random() * extent for _ in range(dims)) for _ in range(n)]


def linear_range(points, rect):
    return sorted(
        i for i, p in enumerate(points) if all(l <= c <= h for l, c, h in zip(rect.low, p, rect.high))
    )


@pytest.fixture
def bulk_tree():
    points = random_points(400, seed=1)
    tree = RTree.bulk_load(2, ((p, i) for i, p in enumerate(points)))
    return points, tree


@pytest.fixture
def insert_tree():
    points = random_points(300, seed=2)
    tree = RTree(2, max_entries=8)
    for i, point in enumerate(points):
        tree.insert(point, i)
    return points, tree


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(IndexError_):
            RTree(0)
        with pytest.raises(IndexError_):
            RTree(2, max_entries=2)
        with pytest.raises(IndexError_):
            RTree(2, max_entries=8, min_entries=7)

    def test_bulk_load_size_and_entries(self, bulk_tree):
        points, tree = bulk_tree
        assert len(tree) == len(points)
        assert len(tree.all_entries()) == len(points)

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load(2, [])
        assert len(tree) == 0
        assert tree.range_query(Rect((0, 0), (1, 1))) == []
        assert not tree.boolean_range_query(Rect((0, 0), (1, 1)))

    def test_bulk_load_respects_fanout(self):
        points = random_points(200, seed=3)
        tree = RTree.bulk_load(2, ((p, i) for i, p in enumerate(points)), max_entries=8)
        stack = [tree.root.node]
        while stack:
            node = stack.pop()
            assert node.size() <= 8
            if not node.leaf:
                stack.extend(node.children)

    def test_insert_grows_height(self, insert_tree):
        _, tree = insert_tree
        assert tree.height > 1
        assert tree.node_count() > 1

    def test_insert_dimension_mismatch(self):
        tree = RTree(2)
        with pytest.raises(IndexError_):
            tree.insert((1, 2, 3), 0)

    def test_node_mbrs_contain_children(self, insert_tree):
        _, tree = insert_tree
        stack = [tree.root.node]
        while stack:
            node = stack.pop()
            if node.leaf:
                for entry in node.entries:
                    assert node.mbr.contains_rect(entry.rect)
            else:
                for child in node.children:
                    assert node.mbr.contains_rect(child.mbr)
                    stack.append(child)


class TestQueries:
    @pytest.mark.parametrize("fixture_name", ["bulk_tree", "insert_tree"])
    def test_range_query_matches_linear_scan(self, fixture_name, request):
        points, tree = request.getfixturevalue(fixture_name)
        for seed in range(5):
            rng = random.Random(seed)
            low = (rng.random() * 80, rng.random() * 80)
            rect = Rect(low, (low[0] + 25, low[1] + 25))
            got = sorted(e.payload for e in tree.range_query(rect))
            assert got == linear_range(points, rect)

    def test_boolean_range_query(self, bulk_tree):
        points, tree = bulk_tree
        assert tree.boolean_range_query(Rect((0, 0), (100, 100)))
        assert not tree.boolean_range_query(Rect((200, 200), (300, 300)))

    def test_count_in_range(self, bulk_tree):
        points, tree = bulk_tree
        rect = Rect((0, 0), (50, 50))
        assert tree.count_in_range(rect) == len(linear_range(points, rect))

    def test_query_dimension_mismatch(self, bulk_tree):
        _, tree = bulk_tree
        with pytest.raises(IndexError_):
            tree.range_query(Rect((0,), (1,)))

    def test_delete_removes_entry(self, insert_tree):
        points, tree = insert_tree
        assert tree.delete(points[10], 10)
        assert len(tree) == len(points) - 1
        rect = Rect.from_point(points[10])
        assert 10 not in [e.payload for e in tree.range_query(rect)]

    def test_delete_missing_returns_false(self, insert_tree):
        points, tree = insert_tree
        assert not tree.delete((999.0, 999.0), 10)
        assert len(tree) == len(points)


class TestBestFirst:
    def test_drain_yields_points_in_mindist_order(self, bulk_tree):
        points, tree = bulk_tree
        mindists = [m for m, _ in tree.best_first().drain()]
        assert mindists == sorted(mindists)
        assert len(mindists) == len(points)

    def test_drain_matches_sorted_points(self, insert_tree):
        points, tree = insert_tree
        order = [e.payload for _, e in tree.best_first().drain()]
        expected = sorted(range(len(points)), key=lambda i: sum(points[i]))
        got_keys = [sum(points[i]) for i in order]
        assert got_keys == sorted(sum(p) for p in points)
        assert set(order) == set(expected)

    def test_manual_expansion_and_pruning(self, bulk_tree):
        points, tree = bulk_tree
        traversal = tree.best_first()
        seen_points = 0
        while traversal:
            _, item = traversal.pop()
            if isinstance(item, NodeRef):
                # Prune every node whose MBR starts beyond x+y = 60.
                if item.rect.mindist() > 60:
                    continue
                traversal.expand(item)
            else:
                assert isinstance(item, RTreeEntry)
                seen_points += 1
        assert 0 < seen_points <= len(points)

    def test_pop_on_exhausted_traversal_raises(self):
        tree = RTree.bulk_load(2, [])
        traversal = tree.best_first()
        assert not traversal
        with pytest.raises(IndexError_):
            traversal.pop()

    def test_peek_mindist(self, bulk_tree):
        _, tree = bulk_tree
        traversal = tree.best_first()
        assert traversal.peek_mindist() == tree.root.rect.mindist()


class TestIOAccounting:
    def test_bulk_load_charges_writes(self):
        disk = DiskSimulator()
        points = random_points(200, seed=4)
        tree = RTree.bulk_load(2, ((p, i) for i, p in enumerate(points)), max_entries=8, disk=disk)
        assert disk.stats.writes == tree.node_count()

    def test_traversal_charges_one_read_per_expanded_node(self):
        disk = DiskSimulator()
        points = random_points(200, seed=5)
        tree = RTree.bulk_load(2, ((p, i) for i, p in enumerate(points)), max_entries=8, disk=disk)
        disk.stats.reset()
        list(tree.best_first().drain())
        assert disk.stats.reads == tree.node_count()

    def test_range_query_charge_io_flag(self):
        disk = DiskSimulator()
        points = random_points(100, seed=6)
        tree = RTree.bulk_load(2, ((p, i) for i, p in enumerate(points)), disk=disk)
        disk.stats.reset()
        tree.range_query(Rect((0, 0), (100, 100)), charge_io=False)
        assert disk.stats.reads == 0
        tree.range_query(Rect((0, 0), (100, 100)), charge_io=True)
        assert disk.stats.reads > 0
