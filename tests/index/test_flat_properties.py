"""Property suite: the flat index plane is indistinguishable from the pointer
tree (hypothesis).

For random datasets across 2-4 dimensions, every available dominance kernel
and the frame path on/off, a BBS-style traversal of the flat tree must
report the *identical* skyline id-set in the *identical* discovery order,
expand the same nodes (equal node reads), and spend equal dominance checks
under the early-exiting reference kernel — the columnar loop's cached block
verdicts may only ever *save* checks, never add any, so under the batched
NumPy kernel the count is equal-or-fewer.  (sTSS is the exception even for
the reference kernel: its batched child-MBB necessary-condition scan has no
early exit, so a cached prune saves the pop-time re-scan on every backend.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bbs_plus import bbs_plus_skyline
from repro.baselines.sdc import sdc_skyline
from repro.baselines.sdc_plus import sdc_plus_skyline
from repro.core.stss import stss_skyline
from repro.data.dataset import Dataset
from repro.data.schema import Schema, TotalOrderAttribute
from repro.index.pager import DiskSimulator
from repro.kernels import available_kernels
from repro.skyline.bbs import bbs_skyline
from tests.conftest import mixed_dataset_strategy

pytest.importorskip("numpy")

KERNELS = available_kernels()


@st.composite
def to_dataset_strategy(draw, max_rows: int = 60):
    """Random TO-only datasets across 2-4 dimensions (classical BBS input)."""
    dims = draw(st.integers(min_value=2, max_value=4))
    schema = Schema([TotalOrderAttribute(f"to{i}") for i in range(dims)])
    num_rows = draw(st.integers(min_value=0, max_value=max_rows))
    rows = [
        tuple(draw(st.integers(min_value=0, max_value=8)) for _ in range(dims))
        for _ in range(num_rows)
    ]
    return Dataset(schema, rows)


def _assert_equivalent(pointer, flat, kernel, *, allow_fewer_checks):
    assert flat.skyline_ids == pointer.skyline_ids  # id-set AND discovery order
    assert flat.stats.nodes_expanded == pointer.stats.nodes_expanded
    assert flat.stats.points_examined == pointer.stats.points_examined
    if kernel == "purepython" or not allow_fewer_checks:
        assert flat.stats.dominance_checks == pointer.stats.dominance_checks
    else:
        assert flat.stats.dominance_checks <= pointer.stats.dominance_checks


class TestFlatEqualsPointerBBS:
    @given(dataset=to_dataset_strategy(), kernel=st.sampled_from(KERNELS))
    @settings(max_examples=40, deadline=None)
    def test_classical_bbs(self, dataset, kernel):
        disk_pointer, disk_flat = DiskSimulator(), DiskSimulator()
        pointer = bbs_skyline(dataset, kernel=kernel, index="pointer", disk=disk_pointer)
        flat = bbs_skyline(dataset, kernel=kernel, index="flat", disk=disk_flat)
        # The columnar loop caches block verdicts, which can only save the
        # batched kernel whole-store re-scans; the reference kernel's
        # early-exit charges compose exactly (prefix + suffix), so its
        # counts are strictly equal.
        _assert_equivalent(pointer, flat, kernel, allow_fewer_checks=True)
        assert disk_flat.stats.reads == disk_pointer.stats.reads

    @given(
        dataset=mixed_dataset_strategy(max_rows=40),
        kernel=st.sampled_from(KERNELS),
        use_frame=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_stss(self, dataset, kernel, use_frame):
        disk_pointer, disk_flat = DiskSimulator(), DiskSimulator()
        pointer = stss_skyline(
            dataset, kernel=kernel, index="pointer", use_frame=use_frame, disk=disk_pointer
        )
        flat = stss_skyline(
            dataset, kernel=kernel, index="flat", use_frame=use_frame, disk=disk_flat
        )
        assert flat.skyline_ids == pointer.skyline_ids
        assert flat.stats.nodes_expanded == pointer.stats.nodes_expanded
        assert flat.stats.points_examined == pointer.stats.points_examined
        # The flat path batches each expansion's child-MBB t-dominance tests
        # (`TDominanceWindow` / `mbb_block_candidates`); a child pruned by
        # that cached verdict skips the pop-time re-scan against members
        # appended since — and the necessary-condition scan has no early
        # exit, so the saving applies to every kernel, reference included.
        # Batched verdicts can only ever *save* checks, never add any.
        assert flat.stats.dominance_checks <= pointer.stats.dominance_checks
        assert disk_flat.stats.reads == disk_pointer.stats.reads

    @given(
        dataset=mixed_dataset_strategy(max_rows=30),
        kernel=st.sampled_from(KERNELS),
    )
    @settings(max_examples=25, deadline=None)
    def test_stss_with_virtual_point_index(self, dataset, kernel):
        pointer = stss_skyline(
            dataset, kernel=kernel, index="pointer", use_virtual_rtree=True
        )
        flat = stss_skyline(dataset, kernel=kernel, index="flat", use_virtual_rtree=True)
        # The array-backed virtual-point index answers the same Boolean
        # range queries, so verdicts — and the one-check-per-candidate
        # accounting — agree everywhere.
        _assert_equivalent(pointer, flat, kernel, allow_fewer_checks=False)

    @given(
        dataset=mixed_dataset_strategy(max_rows=30),
        kernel=st.sampled_from(KERNELS),
    )
    @settings(max_examples=25, deadline=None)
    def test_baselines(self, dataset, kernel):
        for algorithm in (bbs_plus_skyline, sdc_skyline, sdc_plus_skyline):
            pointer = algorithm(dataset, kernel=kernel, index="pointer")
            flat = algorithm(dataset, kernel=kernel, index="flat")
            assert flat.skyline_ids == pointer.skyline_ids, algorithm.__name__
            assert (
                flat.stats.nodes_expanded == pointer.stats.nodes_expanded
            ), algorithm.__name__
            if kernel == "purepython" or algorithm is sdc_plus_skyline:
                assert (
                    flat.stats.dominance_checks == pointer.stats.dominance_checks
                ), algorithm.__name__
            else:
                assert (
                    flat.stats.dominance_checks <= pointer.stats.dominance_checks
                ), algorithm.__name__
