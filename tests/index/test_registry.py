"""Unit tests for the spatial-index backend registry."""

import pytest

from repro.exceptions import ExperimentError
from repro.index.registry import (
    INDEX_ENV_VAR,
    _numpy_available,
    available_indexes,
    resolve_index,
    set_default_index,
)


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    monkeypatch.delenv(INDEX_ENV_VAR, raising=False)
    set_default_index(None)
    yield
    set_default_index(None)


class TestResolution:
    def test_pointer_is_always_available(self):
        assert "pointer" in available_indexes()
        assert resolve_index("pointer") == "pointer"

    def test_aliases(self):
        assert resolve_index("rtree") == "pointer"
        if _numpy_available():
            assert resolve_index("array") == "flat"
            assert resolve_index("FLAT") == "flat"

    def test_unknown_backend_fails_cleanly(self):
        with pytest.raises(ExperimentError, match="unknown index backend"):
            resolve_index("btree")

    def test_default_prefers_flat_with_numpy(self):
        expected = "flat" if _numpy_available() else "pointer"
        assert resolve_index(None) == expected
        assert available_indexes()[-1] == expected

    def test_env_var_is_consulted(self, monkeypatch):
        monkeypatch.setenv(INDEX_ENV_VAR, "pointer")
        assert resolve_index(None) == "pointer"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(INDEX_ENV_VAR, "pointer")
        if not _numpy_available():
            pytest.skip("flat backend requires NumPy")
        set_default_index("flat")
        assert resolve_index(None) == "flat"
        set_default_index(None)
        assert resolve_index(None) == "pointer"

    def test_explicit_argument_beats_everything(self, monkeypatch):
        monkeypatch.setenv(INDEX_ENV_VAR, "bogus")
        assert resolve_index("pointer") == "pointer"

    def test_flat_without_numpy_is_a_clean_error(self, monkeypatch):
        if _numpy_available():
            import repro.index.registry as registry

            monkeypatch.setattr(registry, "_numpy_available", lambda: False)
        with pytest.raises(ExperimentError, match="requires NumPy"):
            resolve_index("flat")
