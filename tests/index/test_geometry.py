"""Unit tests for rectangles and mindist computations."""

import pytest

from repro.exceptions import IndexError_
from repro.index.geometry import Rect, point_mindist


class TestRect:
    def test_invalid_rect_rejected(self):
        with pytest.raises(IndexError_):
            Rect((2.0, 0.0), (1.0, 5.0))

    def test_corner_dimensionality_must_match(self):
        with pytest.raises(IndexError_):
            Rect((0.0,), (1.0, 2.0))

    def test_from_point_is_degenerate(self):
        rect = Rect.from_point((1, 2))
        assert rect.is_point
        assert rect.low == rect.high == (1.0, 2.0)

    def test_bounding(self):
        rect = Rect.bounding([Rect((0, 0), (1, 1)), Rect((2, -1), (3, 0.5))])
        assert rect.low == (0.0, -1.0)
        assert rect.high == (3.0, 1.0)

    def test_bounding_empty_rejected(self):
        with pytest.raises(IndexError_):
            Rect.bounding([])

    def test_mindist_is_l1_of_lower_corner(self):
        assert Rect((1, 2), (5, 6)).mindist() == 3.0
        assert point_mindist((1, 2, 3)) == 6.0

    def test_area_margin_center(self):
        rect = Rect((0, 0), (2, 3))
        assert rect.area() == 6.0
        assert rect.margin() == 5.0
        assert rect.center() == (1.0, 1.5)

    def test_contains_point(self):
        rect = Rect((0, 0), (2, 2))
        assert rect.contains_point((1, 1))
        assert rect.contains_point((0, 2))
        assert not rect.contains_point((3, 1))
        with pytest.raises(IndexError_):
            rect.contains_point((1,))

    def test_contains_rect(self):
        outer = Rect((0, 0), (10, 10))
        inner = Rect((2, 2), (3, 3))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((2, 2), (4, 4))
        c = Rect((3, 3), (5, 5))
        assert a.intersects(b)  # touching counts
        assert not a.intersects(c)
        assert b.intersects(c)

    def test_union_and_enlargement(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        union = a.union(b)
        assert union.low == (0.0, 0.0) and union.high == (3.0, 3.0)
        assert a.enlargement(b) == union.area() - a.area()
        assert a.enlargement(Rect((0.2, 0.2), (0.8, 0.8))) == 0.0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(IndexError_):
            Rect((0,), (1,)).union(Rect((0, 0), (1, 1)))
