"""Unit tests for the structure-of-arrays FlatRTree."""

import pytest

from repro.exceptions import IndexError_
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree, RTreeEntry
from repro.skyline.base import SkylineStats

np = pytest.importorskip("numpy")

from repro.index.flat import (  # noqa: E402
    FlatRTree,
    GrowableRowMatrix,
    run_bbs_flat,
)


def _random_points(n, dims, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 50, size=(n, dims)).astype(float)


def _pointer_tree(points, max_entries, disk=None):
    return RTree.bulk_load(
        points.shape[1],
        ((tuple(row), i) for i, row in enumerate(points)),
        max_entries=max_entries,
        disk=disk,
    )


class TestBulkLoadStructure:
    @pytest.mark.parametrize("n", [0, 1, 7, 33, 400])
    @pytest.mark.parametrize("dims", [2, 3])
    def test_matches_pointer_str_layout(self, n, dims):
        """Same STR math => same node counts, heights and drain order."""
        points = _random_points(n, dims, seed=n + dims)
        flat = FlatRTree.bulk_load(dims, points, max_entries=8)
        pointer = _pointer_tree(points, max_entries=8)
        assert len(flat) == len(pointer) == n
        assert flat.node_count() == pointer.node_count()
        assert flat.height == pointer.height
        flat_drained = [(m, p) for m, _, p in flat.drain()]
        pointer_drained = [(m, e.payload) for m, e in pointer.best_first().drain()]
        assert flat_drained == pointer_drained

    def test_all_entries_match_pointer_entry_api(self):
        points = _random_points(50, 2, seed=9)
        flat = FlatRTree.bulk_load(2, points, max_entries=4)
        entries = flat.all_entries()
        assert all(isinstance(entry, RTreeEntry) for entry in entries)
        assert sorted(entry.payload for entry in entries) == list(range(50))

    def test_explicit_payloads_are_honored(self):
        points = _random_points(20, 2, seed=1)
        payloads = np.arange(20) * 7 + 3
        flat = FlatRTree.bulk_load(2, points, payloads, max_entries=4)
        assert sorted(entry.payload for entry in flat.all_entries()) == sorted(
            payloads.tolist()
        )

    def test_children_are_contiguous_and_cover_everything(self):
        points = _random_points(300, 3, seed=5)
        flat = FlatRTree.bulk_load(3, points, max_entries=8)
        seen_rows = []
        seen_nodes = {flat.root_id}
        stack = [flat.root_id]
        while stack:
            node = stack.pop()
            start, end = int(flat.child_start[node]), int(flat.child_end[node])
            assert 0 < end - start <= flat.max_entries
            if flat.is_leaf(node):
                seen_rows.extend(range(start, end))
                # The node MBR is exactly the bound of its points.
                block = flat.points[start:end]
                assert (flat.node_low[node] == block.min(axis=0)).all()
                assert (flat.node_high[node] == block.max(axis=0)).all()
            else:
                for child in range(start, end):
                    assert child not in seen_nodes
                    seen_nodes.add(child)
                    stack.append(child)
                assert (
                    flat.node_low[node] == flat.node_low[start:end].min(axis=0)
                ).all()
                assert (
                    flat.node_high[node] == flat.node_high[start:end].max(axis=0)
                ).all()
        assert sorted(seen_rows) == list(range(300))
        assert len(seen_nodes) == flat.node_count()

    def test_validation_errors(self):
        points = _random_points(10, 2)
        with pytest.raises(IndexError_):
            FlatRTree.bulk_load(3, points)  # dimensionality mismatch
        with pytest.raises(IndexError_):
            FlatRTree.bulk_load(2, points, max_entries=3)
        with pytest.raises(IndexError_):
            FlatRTree.bulk_load(0, points[:, :0])
        with pytest.raises(IndexError_):
            FlatRTree.bulk_load(2, points, np.arange(9))  # payload length
        with pytest.raises(IndexError_):
            FlatRTree()  # bulk-load only


class TestDiskAccounting:
    def test_bulk_load_charges_one_write_per_node(self):
        points = _random_points(200, 2, seed=3)
        disk_flat, disk_pointer = DiskSimulator(), DiskSimulator()
        flat = FlatRTree.bulk_load(2, points, max_entries=8, disk=disk_flat)
        pointer = _pointer_tree(points, max_entries=8, disk=disk_pointer)
        assert disk_flat.stats.writes == flat.node_count()
        assert disk_pointer.stats.writes == pointer.node_count()
        assert disk_flat.stats.writes == disk_pointer.stats.writes

    def test_empty_tree_charges_no_writes(self):
        disk = DiskSimulator()
        flat = FlatRTree.bulk_load(2, np.empty((0, 2)), disk=disk)
        assert disk.stats.writes == 0
        assert flat.node_count() == 1  # the (empty) root page still exists

    def test_full_traversal_reads_every_node_once(self):
        points = _random_points(150, 2, seed=4)
        disk = DiskSimulator()
        flat = FlatRTree.bulk_load(2, points, max_entries=8, disk=disk)
        stats = SkylineStats()
        results = run_bbs_flat(
            flat,
            dominated_point=lambda point, payload: False,
            dominated_rect=lambda low, high: False,
            on_result=lambda point, payload: None,
            stats=stats,
        )
        assert disk.stats.reads == flat.node_count()
        assert stats.nodes_expanded == flat.node_count()
        assert len(results) == 150


class TestFlatBBSLoop:
    def test_no_pruning_reports_everything_in_mindist_order(self):
        points = _random_points(80, 2, seed=8)
        flat = FlatRTree.bulk_load(2, points, max_entries=4)
        stats = SkylineStats()
        results = run_bbs_flat(
            flat,
            dominated_point=lambda point, payload: False,
            dominated_rect=lambda low, high: False,
            on_result=lambda point, payload: None,
            stats=stats,
        )
        mindists = [points[payload].sum() for payload in results]
        assert mindists == sorted(mindists)
        assert sorted(int(p) for p in results) == list(range(80))
        assert stats.points_examined == 80

    def test_dominated_root_prunes_the_whole_tree(self):
        points = _random_points(40, 2, seed=2)
        flat = FlatRTree.bulk_load(2, points, max_entries=4)
        stats = SkylineStats()
        results = run_bbs_flat(
            flat,
            dominated_point=lambda point, payload: True,
            dominated_rect=lambda low, high: True,
            on_result=lambda point, payload: None,
            stats=stats,
        )
        assert results == []
        assert stats.nodes_expanded == 0

    def test_empty_tree_yields_no_results(self):
        flat = FlatRTree.bulk_load(2, np.empty((0, 2)))
        stats = SkylineStats()
        assert (
            run_bbs_flat(
                flat,
                dominated_point=lambda point, payload: False,
                dominated_rect=lambda low, high: False,
                on_result=lambda point, payload: None,
                stats=stats,
            )
            == []
        )


class TestGrowableRowMatrix:
    def test_appends_grow_past_initial_capacity(self):
        rows = GrowableRowMatrix(3)
        for i in range(100):
            rows.append((float(i), float(i + 1), float(i + 2)))
        assert len(rows) == 100
        assert rows.view.shape == (100, 3)
        assert (rows.view[41] == np.array([41.0, 42.0, 43.0])).all()
