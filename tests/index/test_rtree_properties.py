"""Property-based tests for the R-tree (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.index.geometry import Rect
from repro.index.rtree import RTree

coordinate = st.integers(min_value=0, max_value=50)
point_list = st.lists(st.tuples(coordinate, coordinate), min_size=0, max_size=60)


def linear_range(points, rect):
    return sorted(
        i
        for i, p in enumerate(points)
        if all(l <= c <= h for l, c, h in zip(rect.low, p, rect.high))
    )


@settings(max_examples=60, deadline=None)
@given(points=point_list, corner=st.tuples(coordinate, coordinate), extent=st.tuples(coordinate, coordinate))
def test_bulk_loaded_range_query_matches_linear_scan(points, corner, extent):
    tree = RTree.bulk_load(2, ((p, i) for i, p in enumerate(points)), max_entries=4)
    rect = Rect(corner, (corner[0] + extent[0], corner[1] + extent[1]))
    assert sorted(e.payload for e in tree.range_query(rect)) == linear_range(points, rect)
    assert tree.boolean_range_query(rect) == bool(linear_range(points, rect))


@settings(max_examples=60, deadline=None)
@given(points=point_list, corner=st.tuples(coordinate, coordinate), extent=st.tuples(coordinate, coordinate))
def test_incrementally_built_range_query_matches_linear_scan(points, corner, extent):
    tree = RTree(2, max_entries=4)
    for i, point in enumerate(points):
        tree.insert(point, i)
    rect = Rect(corner, (corner[0] + extent[0], corner[1] + extent[1]))
    assert sorted(e.payload for e in tree.range_query(rect)) == linear_range(points, rect)


@settings(max_examples=60, deadline=None)
@given(points=point_list)
def test_best_first_drain_is_sorted_and_complete(points):
    tree = RTree.bulk_load(2, ((p, i) for i, p in enumerate(points)), max_entries=4)
    drained = list(tree.best_first().drain())
    mindists = [m for m, _ in drained]
    assert mindists == sorted(mindists)
    assert sorted(e.payload for _, e in drained) == list(range(len(points)))


@settings(max_examples=40, deadline=None)
@given(points=point_list)
def test_node_size_invariant_after_insertions(points):
    tree = RTree(2, max_entries=5)
    for i, point in enumerate(points):
        tree.insert(point, i)
    stack = [tree.root.node]
    while stack:
        node = stack.pop()
        assert node.size() <= tree.max_entries
        if not node.leaf:
            stack.extend(node.children)


@settings(max_examples=40, deadline=None)
@given(points=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=40), data=st.data())
def test_delete_then_query_consistency(points, data):
    tree = RTree(2, max_entries=4)
    for i, point in enumerate(points):
        tree.insert(point, i)
    victim = data.draw(st.integers(min_value=0, max_value=len(points) - 1))
    assert tree.delete(points[victim], victim)
    rect = Rect((0, 0), (50, 50))
    payloads = sorted(e.payload for e in tree.range_query(rect))
    assert payloads == sorted(set(range(len(points))) - {victim})
