"""Unit tests for the simulated disk and buffer pool."""

import pytest

from repro.exceptions import IndexError_
from repro.index.pager import (
    DEFAULT_IO_COST_SECONDS,
    BufferPool,
    DiskSimulator,
    IOStats,
    fanout_for_page,
)


class TestIOStats:
    def test_totals_and_reset(self):
        stats = IOStats(reads=3, writes=2, buffer_hits=1)
        assert stats.total_ios == 5
        stats.reset()
        assert stats.total_ios == 0 and stats.buffer_hits == 0

    def test_merge(self):
        merged = IOStats(reads=1, writes=2).merged_with(IOStats(reads=3, buffer_hits=4))
        assert merged.reads == 4 and merged.writes == 2 and merged.buffer_hits == 4


class TestBufferPool:
    def test_zero_capacity_never_hits(self):
        pool = BufferPool(0)
        assert not pool.access(1)
        assert not pool.access(1)

    def test_lru_eviction(self):
        pool = BufferPool(2)
        assert not pool.access(1)
        assert not pool.access(2)
        assert pool.access(1)          # hit, 1 becomes most recent
        assert not pool.access(3)      # evicts 2
        assert not pool.access(2)      # miss again
        assert pool.access(3)

    def test_clear(self):
        pool = BufferPool(2)
        pool.access(1)
        pool.clear()
        assert not pool.access(1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(IndexError_):
            BufferPool(-1)


class TestDiskSimulator:
    def test_reads_writes_and_time(self):
        disk = DiskSimulator(io_cost_seconds=0.01)
        disk.read(1)
        disk.read(2)
        disk.write(3)
        assert disk.stats.reads == 2 and disk.stats.writes == 1
        assert disk.io_time() == pytest.approx(0.03)

    def test_default_io_cost_matches_paper(self):
        assert DEFAULT_IO_COST_SECONDS == 0.005

    def test_buffer_pool_absorbs_repeated_reads(self):
        disk = DiskSimulator(buffer_pool=BufferPool(4))
        for _ in range(5):
            disk.read(7)
        assert disk.stats.reads == 1
        assert disk.stats.buffer_hits == 4

    def test_allocate_page_is_unique(self):
        disk = DiskSimulator()
        pages = {disk.allocate_page() for _ in range(10)}
        assert len(pages) == 10

    def test_allocate_pages_reserves_a_disjoint_block(self):
        disk = DiskSimulator()
        first = disk.allocate_pages(5)
        assert disk.allocate_page() == first + 5
        assert disk.allocate_pages(0) == first + 6
        with pytest.raises(IndexError_):
            disk.allocate_pages(-1)

    def test_write_many_equals_repeated_writes(self):
        bulk, repeated = DiskSimulator(), DiskSimulator()
        bulk.write_many(7)
        for page in range(7):
            repeated.write(page)
        assert bulk.stats.writes == repeated.stats.writes == 7
        bulk.write_many(0)
        assert bulk.stats.writes == 7
        with pytest.raises(IndexError_):
            bulk.write_many(-3)

    def test_reset(self):
        disk = DiskSimulator(buffer_pool=BufferPool(2))
        disk.read(1)
        disk.reset()
        assert disk.stats.total_ios == 0
        assert disk.stats.buffer_hits == 0


class TestFanout:
    def test_fanout_decreases_with_dimensionality(self):
        assert fanout_for_page(2) > fanout_for_page(6)

    def test_fanout_is_clamped(self):
        assert fanout_for_page(1, page_size=100_000) == 256
        assert fanout_for_page(50, page_size=128) == 4
