"""Tests for the reprolint architectural-invariant checker.

Every rule gets a *good* fixture (no findings) and a *bad* fixture (the rule
fires on the expected line), so a rule can never silently become vacuous.
The fixtures are source strings linted through a tiny helper that writes them
to a temp tree, which also exercises module-name resolution (``src/repro/...``
path segments map to ``repro....`` dotted names).
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from reprolint import run_paths  # noqa: E402
from reprolint.engine import (  # noqa: E402
    Finding,
    lint_modules,
    load_modules,
    module_name_for,
    parse_suppressions,
)
from reprolint.rules import ALL_RULES, get_rules  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_sources(tmp_path, sources, rules=None):
    """Write ``{relpath: source}`` under a temp tree and lint it.

    Relpaths include the ``src/repro/...`` prefix so dotted module names
    resolve exactly as they do in the real checkout.
    """
    for relpath, source in sources.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return run_paths([tmp_path], rules=rules)


def rules_fired(report):
    return {finding.rule for finding in report.findings}


class TestEngine:
    def test_module_name_roots_at_src(self):
        assert module_name_for(Path("src/repro/engine/batch.py")) == "repro.engine.batch"
        assert module_name_for(Path("x/src/repro/config.py")) == "repro.config"
        assert module_name_for(Path("repro/data/__init__.py")) == "repro.data"
        assert module_name_for(Path("fixture.py")) == "fixture"

    def test_parse_suppressions_with_justification_trailer(self):
        source = "x = 1  # reprolint: disable=typed-errors -- shutdown guard\n"
        assert parse_suppressions(source) == {1: frozenset({"typed-errors"})}

    def test_parse_suppressions_multiple_rules(self):
        source = "x = 1  # reprolint: disable=env-gateway, typed-errors\n"
        assert parse_suppressions(source) == {
            1: frozenset({"env-gateway", "typed-errors"})
        }

    def test_get_rules_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rules(["no-such-rule"])

    def test_finding_render_is_ruff_style(self):
        finding = Finding("src/repro/x.py", 3, 5, "env-gateway", "boom")
        assert finding.render() == "src/repro/x.py:3:5: env-gateway boom"

    def test_every_rule_has_description(self):
        for rule in ALL_RULES:
            assert rule.description
            assert (rule.check is None) != (rule.project_check is None)


class TestEnvGateway:
    def test_config_may_read_environ(self, tmp_path):
        report = lint_sources(
            tmp_path,
            {"src/repro/config.py": "import os\nvalue = os.environ.get('REPRO_X')\n"},
            rules=["env-gateway"],
        )
        assert report.findings == []

    def test_other_module_reading_environ_is_flagged(self, tmp_path):
        report = lint_sources(
            tmp_path,
            {"src/repro/engine/batch.py": "import os\nvalue = os.environ.get('REPRO_X')\n"},
            rules=["env-gateway"],
        )
        assert rules_fired(report) == {"env-gateway"}
        assert report.findings[0].line == 2

    def test_from_import_alias_is_flagged(self, tmp_path):
        report = lint_sources(
            tmp_path,
            {"src/repro/data/columns.py": "from os import getenv\n"},
            rules=["env-gateway"],
        )
        assert rules_fired(report) == {"env-gateway"}


class TestNumpyContainment:
    def test_guarded_import_in_allowed_module_is_clean(self, tmp_path):
        source = (
            "try:\n"
            "    import numpy\n"
            "except ImportError:\n"
            "    numpy = None\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/data/columns.py": source}, rules=["numpy-containment"]
        )
        assert report.findings == []

    def test_unguarded_module_scope_import_is_flagged(self, tmp_path):
        report = lint_sources(
            tmp_path,
            {"src/repro/data/columns.py": "import numpy\n"},
            rules=["numpy-containment"],
        )
        assert rules_fired(report) == {"numpy-containment"}

    def test_import_outside_allowlist_is_flagged(self, tmp_path):
        source = (
            "def f():\n"
            "    import numpy\n"
            "    return numpy.zeros(1)\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/skyline/sfs.py": source}, rules=["numpy-containment"]
        )
        assert rules_fired(report) == {"numpy-containment"}

    def test_numpy_required_module_imports_freely(self, tmp_path):
        report = lint_sources(
            tmp_path,
            {"src/repro/kernels/numpy_kernel.py": "import numpy as np\n"},
            rules=["numpy-containment"],
        )
        assert report.findings == []

    def test_jit_kernel_imports_numpy_and_numba_freely(self, tmp_path):
        report = lint_sources(
            tmp_path,
            {
                "src/repro/kernels/jit_kernel.py": (
                    "import numpy as np\n"
                    "from numba import njit\n"
                    "from repro.kernels.numpy_kernel import NumpyKernel\n"
                )
            },
            rules=["numpy-containment"],
        )
        assert report.findings == []

    def test_unguarded_numba_import_is_flagged(self, tmp_path):
        report = lint_sources(
            tmp_path,
            {"src/repro/kernels/registry_helper.py": "from numba import njit\n"},
            rules=["numpy-containment"],
        )
        assert rules_fired(report) == {"numpy-containment"}
        assert "numba" in report.findings[0].message

    def test_numba_outside_allowlist_is_flagged(self, tmp_path):
        source = (
            "def f():\n"
            "    from numba import njit\n"
            "    return njit\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/skyline/sfs.py": source}, rules=["numpy-containment"]
        )
        assert rules_fired(report) == {"numpy-containment"}
        assert "numba" in report.findings[0].message

    def test_guarded_numba_probe_is_clean(self, tmp_path):
        source = (
            "def _numba_available():\n"
            "    try:\n"
            "        import numba  # noqa: F401\n"
            "    except ImportError:\n"
            "        return False\n"
            "    return True\n"
        )
        report = lint_sources(
            tmp_path,
            {"src/repro/kernels/__init__.py": source},
            rules=["numpy-containment"],
        )
        assert report.findings == []

    def test_module_scope_import_of_jit_kernel_is_flagged(self, tmp_path):
        report = lint_sources(
            tmp_path,
            {
                "src/repro/engine/batch.py": (
                    "from repro.kernels.jit_kernel import JitKernel\n"
                )
            },
            rules=["numpy-containment"],
        )
        assert rules_fired(report) == {"numpy-containment"}
        assert "jit_kernel" in report.findings[0].message


class TestTypedErrors:
    def test_plane_raising_its_own_error_is_clean(self, tmp_path):
        source = (
            "from repro.exceptions import StoreError\n"
            "def read(path):\n"
            "    raise StoreError(f'bad store {path}')\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/store/reader.py": source}, rules=["typed-errors"]
        )
        assert report.findings == []

    def test_generic_raise_in_plane_is_flagged(self, tmp_path):
        source = (
            "def read(path):\n"
            "    raise ValueError('bad store')\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/store/reader.py": source}, rules=["typed-errors"]
        )
        assert rules_fired(report) == {"typed-errors"}
        assert "ValueError" in report.findings[0].message

    def test_bare_except_is_flagged(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/store/reader.py": source}, rules=["typed-errors"]
        )
        assert any("bare" in f.message for f in report.findings)

    def test_swallowing_exception_is_flagged(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/engine/batch.py": source}, rules=["typed-errors"]
        )
        assert rules_fired(report) == {"typed-errors"}

    def test_protocol_method_may_raise_keyerror(self, tmp_path):
        source = (
            "class Cache:\n"
            "    def __getitem__(self, key):\n"
            "        raise KeyError(key)\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/engine/lru.py": source}, rules=["typed-errors"]
        )
        assert report.findings == []


class TestRecordHotPath:
    def test_kernel_touching_records_is_flagged(self, tmp_path):
        source = (
            "def encode(dataset):\n"
            "    return [r.values for r in dataset.records]\n"
        )
        report = lint_sources(
            tmp_path,
            {"src/repro/kernels/numpy_kernel.py": source},
            rules=["no-record-hot-path"],
        )
        assert rules_fired(report) == {"no-record-hot-path"}

    def test_non_hot_module_may_touch_records(self, tmp_path):
        source = (
            "def rows(dataset):\n"
            "    return list(dataset.records)\n"
        )
        report = lint_sources(
            tmp_path,
            {"src/repro/data/dataset.py": source},
            rules=["no-record-hot-path"],
        )
        assert report.findings == []


class TestLockOrder:
    TWO_LOCK_INVERTED = (
        "import threading\n"
        "\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self._a_lock = threading.Lock()\n"
        "        self._b_lock = threading.Lock()\n"
        "\n"
        "    def forward(self):\n"
        "        with self._a_lock:\n"
        "            with self._b_lock:\n"
        "                return 1\n"
        "\n"
        "    def backward(self):\n"
        "        with self._b_lock:\n"
        "            with self._a_lock:\n"
        "                return 2\n"
    )

    def test_inverted_two_lock_order_is_flagged(self, tmp_path):
        report = lint_sources(
            tmp_path,
            {"src/repro/engine/batch.py": self.TWO_LOCK_INVERTED},
            rules=["lock-order"],
        )
        assert rules_fired(report) == {"lock-order"}
        assert any("inconsistent lock order" in f.message for f in report.findings)

    def test_consistent_order_is_clean(self, tmp_path):
        source = self.TWO_LOCK_INVERTED.replace(
            "        with self._b_lock:\n"
            "            with self._a_lock:\n"
            "                return 2\n",
            "        with self._a_lock:\n"
            "            with self._b_lock:\n"
            "                return 2\n",
        )
        report = lint_sources(
            tmp_path, {"src/repro/engine/batch.py": source}, rules=["lock-order"]
        )
        assert report.findings == []

    def test_self_deadlock_on_plain_lock_is_flagged(self, tmp_path):
        source = (
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._state_lock = threading.Lock()\n"
            "    def outer(self):\n"
            "        with self._state_lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._state_lock:\n"
            "            return 1\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/engine/batch.py": source}, rules=["lock-order"]
        )
        assert any("re-acquire" in f.message or "self-deadlock" in f.message
                   for f in report.findings)

    def test_rlock_reacquire_is_allowed(self, tmp_path):
        source = (
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._state_lock = threading.RLock()\n"
            "    def outer(self):\n"
            "        with self._state_lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._state_lock:\n"
            "            return 1\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/engine/batch.py": source}, rules=["lock-order"]
        )
        assert report.findings == []

    def test_blocking_call_under_state_lock_is_flagged(self, tmp_path):
        source = (
            "import threading\n"
            "import time\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._state_lock = threading.Lock()\n"
            "    def tick(self):\n"
            "        with self._state_lock:\n"
            "            time.sleep(1.0)\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/engine/batch.py": source}, rules=["lock-order"]
        )
        assert any("blocking" in f.message for f in report.findings)

    def test_blocking_call_under_asyncio_lock_is_flagged(self, tmp_path):
        source = (
            "import asyncio\n"
            "import time\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._lifecycle_lock = asyncio.Lock()\n"
            "    async def tick(self):\n"
            "        async with self._lifecycle_lock:\n"
            "            time.sleep(1.0)\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/service/server.py": source}, rules=["lock-order"]
        )
        assert any("event loop" in f.message for f in report.findings)

    def test_blocking_callee_under_asyncio_lock_is_flagged(self, tmp_path):
        source = (
            "import asyncio\n"
            "import time\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._lifecycle_lock = asyncio.Lock()\n"
            "    def _sync_work(self):\n"
            "        time.sleep(1.0)\n"
            "    async def tick(self):\n"
            "        async with self._lifecycle_lock:\n"
            "            self._sync_work()\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/service/server.py": source}, rules=["lock-order"]
        )
        assert any("event loop" in f.message for f in report.findings)

    def test_awaiting_under_asyncio_lock_is_clean(self, tmp_path):
        source = (
            "import asyncio\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._lifecycle_lock = asyncio.Lock()\n"
            "    async def tick(self):\n"
            "        async with self._lifecycle_lock:\n"
            "            await asyncio.sleep(1.0)\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/service/server.py": source}, rules=["lock-order"]
        )
        assert report.findings == []


class TestSuppression:
    def test_suppression_waives_and_counts_the_finding(self, tmp_path):
        source = (
            "import os\n"
            "value = os.environ.get('X')  # reprolint: disable=env-gateway -- test\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/engine/batch.py": source}, rules=["env-gateway"]
        )
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "env-gateway"

    def test_suppression_for_other_rule_does_not_waive(self, tmp_path):
        source = (
            "import os\n"
            "value = os.environ.get('X')  # reprolint: disable=typed-errors\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/engine/batch.py": source}, rules=["env-gateway"]
        )
        assert rules_fired(report) == {"env-gateway"}

    def test_disable_all_waives_everything(self, tmp_path):
        source = (
            "import os\n"
            "value = os.environ.get('X')  # reprolint: disable=all\n"
        )
        report = lint_sources(
            tmp_path, {"src/repro/engine/batch.py": source}, rules=["env-gateway"]
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestRealTree:
    def test_src_repro_is_clean(self):
        report = run_paths([REPO_ROOT / "src" / "repro"])
        assert [f.render() for f in report.findings] == []
        assert report.modules_checked > 50

    def test_cli_exits_zero_on_real_tree(self):
        result = subprocess.run(
            [sys.executable, "-m", "reprolint", str(REPO_ROOT / "src" / "repro")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(TOOLS_DIR), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_cli_exits_one_on_findings(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "engine" / "batch.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import os\nvalue = os.environ.get('X')\n", encoding="utf-8")
        result = subprocess.run(
            [sys.executable, "-m", "reprolint", str(tmp_path)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(TOOLS_DIR), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 1
        assert "env-gateway" in result.stdout

    def test_repro_cli_wires_lint_subcommand(self):
        from repro.cli import lint_main

        assert lint_main(["--list-rules"]) == 0


class TestMypyGate:
    def test_mypy_strict_passes_on_core_surface(self):
        """Run the strict gate locally when mypy is available (CI always runs it)."""
        if shutil.which("mypy") is None:
            pytest.skip("mypy not installed in this environment")
        result = subprocess.run(
            ["mypy", "--config-file", "pyproject.toml"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
