"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.data.workloads import WorkloadSpec
from repro.order.builders import airline_preference_dag, paper_example_dag
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import encode_domain
from repro.order.lattice import lattice_domain


# --------------------------------------------------------------------- #
# Paper examples
# --------------------------------------------------------------------- #
@pytest.fixture
def example_dag() -> PartialOrderDAG:
    """The 9-node DAG of Figure 2(a) (values a..i)."""
    return paper_example_dag()


@pytest.fixture
def example_encoding(example_dag):
    return encode_domain(example_dag)


@pytest.fixture
def airline_dag() -> PartialOrderDAG:
    """The airline preference DAG of the introduction (Table I, first row)."""
    return airline_preference_dag()


@pytest.fixture
def flight_schema(airline_dag) -> Schema:
    return Schema(
        [
            TotalOrderAttribute("price"),
            TotalOrderAttribute("stops"),
            PartialOrderAttribute("airline", airline_dag),
        ]
    )


@pytest.fixture
def flight_dataset(flight_schema) -> Dataset:
    """The 10-ticket dataset of Figure 1(a); record id i corresponds to ticket p(i+1)."""
    rows = [
        (1800, 0, "a"),
        (2000, 0, "a"),
        (1800, 0, "b"),
        (1200, 1, "b"),
        (1400, 1, "a"),
        (1000, 1, "b"),
        (1000, 1, "d"),
        (1800, 1, "c"),
        (500, 2, "d"),
        (1200, 2, "c"),
    ]
    return Dataset(flight_schema, rows)


# --------------------------------------------------------------------- #
# Small synthetic workloads
# --------------------------------------------------------------------- #
@pytest.fixture
def small_workload():
    """A small mixed TO/PO workload with a modest lattice domain."""
    spec = WorkloadSpec(
        name="unit",
        distribution="independent",
        cardinality=200,
        num_total_order=2,
        num_partial_order=1,
        dag_height=4,
        dag_density=0.8,
        to_domain_size=60,
        seed=11,
    )
    return spec.build()


@pytest.fixture
def small_anticorrelated_workload():
    spec = WorkloadSpec(
        name="unit-anti",
        distribution="anticorrelated",
        cardinality=200,
        num_total_order=2,
        num_partial_order=2,
        dag_height=3,
        dag_density=0.7,
        to_domain_size=40,
        seed=5,
    )
    return spec.build()


# --------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------- #
def random_dag_strategy(max_values: int = 10) -> st.SearchStrategy[PartialOrderDAG]:
    """Random small DAGs: a random permutation plus forward edges."""

    @st.composite
    def build(draw):
        size = draw(st.integers(min_value=1, max_value=max_values))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        probability = draw(st.floats(min_value=0.0, max_value=0.9))
        rng = random.Random(seed)
        labels = [f"v{i}" for i in range(size)]
        order = labels[:]
        rng.shuffle(order)
        edges = [
            (order[i], order[j])
            for i in range(size)
            for j in range(i + 1, size)
            if rng.random() < probability
        ]
        return PartialOrderDAG(labels, edges)

    return build()


def mixed_dataset_strategy(
    max_rows: int = 40,
    max_to: int = 3,
    max_po: int = 2,
    max_dag_values: int = 6,
    min_to: int = 1,
) -> st.SearchStrategy[Dataset]:
    """Small random datasets over random mixed TO/PO schemas.

    ``min_to=0`` additionally generates PO-only schemas (zero TO columns),
    a supported configuration the columnar block helpers must handle.
    """

    @st.composite
    def build(draw):
        num_to = draw(st.integers(min_value=min_to, max_value=max_to))
        num_po = draw(st.integers(min_value=1, max_value=max_po))
        dags = [draw(random_dag_strategy(max_dag_values)) for _ in range(num_po)]
        attributes = [TotalOrderAttribute(f"to{i}") for i in range(num_to)]
        attributes += [PartialOrderAttribute(f"po{i}", dag) for i, dag in enumerate(dags)]
        schema = Schema(attributes)
        num_rows = draw(st.integers(min_value=1, max_value=max_rows))
        rows = []
        for _ in range(num_rows):
            to_values = [draw(st.integers(min_value=0, max_value=8)) for _ in range(num_to)]
            po_values = [
                dag.values[draw(st.integers(min_value=0, max_value=len(dag.values) - 1))]
                for dag in dags
            ]
            rows.append(tuple(to_values) + tuple(po_values))
        return Dataset(schema, rows)

    return build()


@pytest.fixture
def tiny_lattice() -> PartialOrderDAG:
    return lattice_domain(3, 1.0, seed=0)
