"""Unit tests for the experiment registry (run on a tiny ad-hoc profile)."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    flight_dataset,
    run_experiment,
    table1_flights,
)
from repro.bench.runner import BenchProfile
from repro.exceptions import ExperimentError
from repro.order.builders import airline_preference_dag


@pytest.fixture(scope="module")
def tiny_profile():
    """A miniature profile so every experiment finishes in well under a second."""
    return BenchProfile(
        name="tiny",
        cardinalities=(40, 80),
        default_cardinality=60,
        dimensionalities=((2, 1), (2, 2)),
        dag_heights=(2, 3),
        dag_densities=(0.5, 1.0),
        static_defaults={"num_total_order": 2, "num_partial_order": 1, "dag_height": 3, "dag_density": 1.0},
        dynamic_defaults={"num_total_order": 2, "num_partial_order": 1, "dag_height": 3, "dag_density": 1.0},
    )


class TestRegistry:
    def test_every_figure_of_the_paper_is_registered(self):
        for experiment_id in ("table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert experiment_id in EXPERIMENTS

    def test_ablations_are_registered(self):
        assert "ablation_virtual_rtree" in EXPERIMENTS
        assert "ablation_dtss_precompute" in EXPERIMENTS

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")


class TestTable1:
    def test_matches_the_paper_exactly(self):
        table = table1_flights()
        assert table.rows[0]["skyline tickets"] == "p1, p5, p6, p9, p10"
        assert table.rows[1]["skyline tickets"] == "p3, p6, p7, p8, p9, p10"

    def test_flight_dataset_helper(self):
        schema, dataset, labels = flight_dataset(airline_preference_dag())
        assert len(dataset) == 10
        assert labels[0] == "p1" and labels[9] == "p10"
        assert schema.num_partial_order == 1


class TestStaticExperiments:
    @pytest.mark.parametrize("experiment_id", ["fig7", "fig9", "fig10"])
    def test_sweeps_produce_one_row_per_setting(self, tiny_profile, experiment_id):
        table = run_experiment(experiment_id, tiny_profile)
        assert len(table.rows) == 2 * 2  # two distributions x two axis values
        assert all("speedup" in row for row in table.rows)
        assert all(row["SDC+ total (s)"] >= 0 for row in table.rows)

    def test_fig8_dimensionality(self, tiny_profile):
        table = run_experiment("fig8", tiny_profile)
        assert len(table.rows) == 2 * len(tiny_profile.dimensionalities)

    def test_fig11_progressiveness_rows_are_monotone(self, tiny_profile):
        table = run_experiment("fig11", tiny_profile)
        for distribution in ("independent", "anticorrelated"):
            rows = [r for r in table.rows if r["distribution"] == distribution]
            percentages = [r["results retrieved (%)"] for r in rows]
            assert percentages == sorted(percentages)
            times = [r["TSS time (s)"] for r in rows]
            assert times == sorted(times)


class TestDynamicExperiments:
    def test_fig12_rows_and_io_columns(self, tiny_profile):
        table = run_experiment("fig12", tiny_profile)
        assert len(table.rows) == 4
        for row in table.rows:
            assert row["SDC+ IOs"] > row["TSS IOs"]

    def test_fig13_dimensionality(self, tiny_profile):
        table = run_experiment("fig13", tiny_profile)
        assert len(table.rows) == 2 * len(tiny_profile.dimensionalities)

    def test_fig14_has_height_and_density_sweeps(self, tiny_profile):
        table = run_experiment("fig14", tiny_profile)
        sweeps = {row["sweep"] for row in table.rows}
        assert sweeps == {"h", "d"}


class TestAblations:
    def test_virtual_rtree_ablation(self, tiny_profile):
        table = run_experiment("ablation_virtual_rtree", tiny_profile)
        assert len(table.rows) == 2
        assert all(row["TSS checks"] > 0 for row in table.rows)

    def test_dtss_precompute_ablation(self, tiny_profile):
        table = run_experiment("ablation_dtss_precompute", tiny_profile)
        assert len(table.rows) == 2
        assert all(row["dTSS total (s)"] >= 0 for row in table.rows)
