"""Unit tests for the benchmark runners (tiny workloads for speed)."""

import pytest

from repro.bench.runner import BenchProfile, DynamicRunner, StaticRunner
from repro.data.workloads import WorkloadSpec
from repro.exceptions import ExperimentError
from repro.skyline.bruteforce import brute_force_skyline


TINY_STATIC = WorkloadSpec(
    name="runner-static",
    distribution="independent",
    cardinality=120,
    num_total_order=2,
    num_partial_order=1,
    dag_height=3,
    dag_density=1.0,
    to_domain_size=30,
    seed=2,
)

TINY_DYNAMIC = WorkloadSpec(
    name="runner-dynamic",
    distribution="independent",
    cardinality=120,
    num_total_order=2,
    num_partial_order=1,
    dag_height=3,
    dag_density=1.0,
    to_domain_size=30,
    seed=3,
)


class TestBenchProfile:
    def test_quick_and_full_profiles(self):
        quick, full = BenchProfile.quick(), BenchProfile.full()
        assert quick.default_cardinality < full.default_cardinality
        assert len(quick.cardinalities) == len(full.cardinalities) == 5
        assert quick.dimensionalities == full.dimensionalities

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert BenchProfile.from_env().name == "quick"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "full")
        assert BenchProfile.from_env().name == "full"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "huge")
        with pytest.raises(ExperimentError):
            BenchProfile.from_env()

    def test_spec_builders_apply_overrides(self):
        profile = BenchProfile.quick()
        spec = profile.static_spec("anticorrelated", cardinality=42, dag_height=3)
        assert spec.cardinality == 42 and spec.dag_height == 3
        dynamic = profile.dynamic_spec("independent")
        assert dynamic.num_partial_order == 1


class TestStaticRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return StaticRunner(TINY_STATIC)

    @pytest.fixture(scope="class")
    def truth(self, runner):
        return frozenset(brute_force_skyline(runner.dataset).skyline_ids)

    @pytest.mark.parametrize("method", ["TSS", "TSS*", "SDC+", "SDC", "BBS+", "BNL", "SFS", "BRUTE"])
    def test_every_method_runs_and_is_correct(self, runner, truth, method):
        run = runner.run(method)
        assert run.skyline_size == len(truth)
        assert run.total_seconds >= 0.0

    def test_unknown_method(self, runner):
        with pytest.raises(ExperimentError):
            runner.run("quantum")

    def test_compare_returns_all_methods(self, runner):
        results = runner.compare(("SDC+", "TSS"))
        assert set(results) == {"SDC+", "TSS"}

    def test_progress_fractions(self, runner):
        run = runner.run("TSS", progress_fractions=(0.5, 1.0))
        assert set(run.progressive_times) == {50, 100}
        assert run.progressive_times[50] <= run.progressive_times[100]

    def test_index_construction_is_not_charged_to_the_query(self, runner):
        run = runner.run("TSS")
        assert run.io_count < 3 * len(runner.dataset)


class TestDynamicRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return DynamicRunner(TINY_DYNAMIC)

    def test_query_partial_orders_cover_data_domain(self, runner):
        orders = runner.query_partial_orders(1)
        assert len(orders) == 1
        data_dag = runner.data_dags[0]
        assert set(orders[0].values) == set(data_dag.values)

    def test_query_generation_is_deterministic(self, runner):
        assert runner.query_partial_orders(5)[0].edges == runner.query_partial_orders(5)[0].edges

    @pytest.mark.parametrize("method", ["TSS", "TSS+local", "SDC+"])
    def test_methods_agree_on_the_same_query(self, runner, method):
        partial_orders = runner.query_mapping(2)
        reference = runner.run("TSS", partial_orders)
        run = runner.run(method, partial_orders)
        assert run.skyline_size == reference.skyline_size

    def test_sdc_baseline_is_more_expensive(self, runner):
        results = runner.compare(("SDC+", "TSS"), query_seed=4)
        assert results["SDC+"].io_count > results["TSS"].io_count

    def test_unknown_method(self, runner):
        with pytest.raises(ExperimentError):
            runner.run("quantum")
