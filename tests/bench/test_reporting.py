"""Unit tests for experiment tables and rendering."""

from repro.bench.reporting import ExperimentTable, render_tables, speedup_column


def make_table():
    table = ExperimentTable(
        experiment_id="figX",
        title="A test figure",
        parameters={"N": 100},
        expected_shape="method A wins",
    )
    table.add_row({"N": 100, "A (s)": 1.0, "B (s)": 2.0})
    table.add_row({"N": 200, "A (s)": 1.5, "B (s)": 4.5, "extra": "note"})
    return table


class TestExperimentTable:
    def test_add_row_extends_columns(self):
        table = make_table()
        assert table.columns == ["N", "A (s)", "B (s)", "extra"]

    def test_column_values(self):
        table = make_table()
        assert table.column_values("A (s)") == [1.0, 1.5]
        assert table.column_values("extra") == [None, "note"]

    def test_to_text_contains_header_params_and_rows(self):
        rendered = make_table().to_text()
        assert "figX" in rendered and "A test figure" in rendered
        assert "N=100" in rendered
        assert "method A wins" in rendered
        assert "1.50" in rendered and "4.50" in rendered

    def test_to_text_empty_table(self):
        table = ExperimentTable(experiment_id="empty", title="nothing")
        assert "(no rows)" in table.to_text()

    def test_to_markdown(self):
        markdown = make_table().to_markdown()
        lines = markdown.splitlines()
        assert lines[0].startswith("| N |")
        assert lines[1].startswith("| ---")
        assert len(lines) == 4

    def test_to_markdown_empty(self):
        table = ExperimentTable(experiment_id="empty", title="nothing")
        assert "no rows" in table.to_markdown()

    def test_float_formatting(self):
        table = ExperimentTable(experiment_id="f", title="fmt")
        table.add_row({"big": 1234.5, "mid": 3.14159, "small": 0.00123, "zero": 0.0})
        rendered = table.to_text()
        assert "1234" in rendered or "1235" in rendered
        assert "3.14" in rendered
        assert "0.0012" in rendered


class TestHelpers:
    def test_render_tables_concatenates(self):
        rendered = render_tables([make_table(), make_table()])
        assert rendered.count("figX") == 2

    def test_speedup_column(self):
        rows = [{"a": 2.0, "b": 1.0}, {"a": 9.0, "b": 3.0}, {"a": 1.0, "b": 0.0}]
        assert speedup_column(rows, "a", "b") == [2.0, 3.0, 0.0]
