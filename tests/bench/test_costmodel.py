"""Unit tests for the benchmark cost model."""

import pytest

from repro.bench.costmodel import MeasuredRun, total_time_seconds
from repro.skyline.base import ProgressEvent, SkylineResult, SkylineStats


def make_result():
    stats = SkylineStats(
        cpu_seconds=0.2,
        io_reads=10,
        io_writes=0,
        io_cost_seconds=0.005,
        dominance_checks=123,
        nodes_expanded=7,
        false_hits_removed=2,
    )
    progress = [
        ProgressEvent(results_so_far=i + 1, cpu_seconds=0.01 * (i + 1), io_reads=i, dominance_checks=i)
        for i in range(10)
    ]
    return SkylineResult(skyline_ids=list(range(10)), stats=stats, progress=progress)


class TestTotalTime:
    def test_total_time_combines_cpu_and_io(self):
        stats = SkylineStats(cpu_seconds=1.0, io_reads=100, io_cost_seconds=0.005)
        assert total_time_seconds(stats) == pytest.approx(1.5)

    def test_custom_io_cost(self):
        stats = SkylineStats(cpu_seconds=1.0, io_reads=100)
        assert total_time_seconds(stats, io_cost_seconds=0.0) == pytest.approx(1.0)


class TestMeasuredRun:
    def test_from_result_copies_counters(self):
        run = MeasuredRun.from_result("TSS", make_result(), parameters={"N": 100})
        assert run.method == "TSS"
        assert run.skyline_size == 10
        assert run.io_count == 10
        assert run.dominance_checks == 123
        assert run.false_hits_removed == 2
        assert run.parameters["N"] == 100

    def test_total_and_cpu_fraction(self):
        run = MeasuredRun.from_result("TSS", make_result())
        assert run.io_seconds == pytest.approx(0.05)
        assert run.total_seconds == pytest.approx(0.25)
        assert run.cpu_fraction == pytest.approx(0.2 / 0.25)

    def test_cpu_fraction_of_zero_run(self):
        run = MeasuredRun(method="x")
        assert run.cpu_fraction == 0.0

    def test_progress_fractions_are_sampled(self):
        run = MeasuredRun.from_result("TSS", make_result(), progress_fractions=(0.5, 1.0))
        assert set(run.progressive_times) == {50, 100}
        assert run.progressive_times[50] <= run.progressive_times[100]
