"""Unit tests for the text bar-chart renderer."""

from repro.bench.charts import default_value_columns, render_bar_chart, render_experiment_chart
from repro.bench.reporting import ExperimentTable


def make_table():
    table = ExperimentTable(experiment_id="figX", title="A chartable figure")
    table.add_row({"distribution": "independent", "N": 100, "SDC+ total (s)": 2.0, "TSS total (s)": 1.0})
    table.add_row({"distribution": "independent", "N": 200, "SDC+ total (s)": 4.0, "TSS total (s)": 1.5})
    return table


class TestRenderBarChart:
    def test_contains_labels_values_and_bars(self):
        chart = render_bar_chart(make_table(), ["SDC+ total (s)", "TSS total (s)"], width=40)
        assert "figX" in chart
        assert "distribution=independent" in chart and "N=200" in chart
        assert "#" in chart
        assert "4" in chart

    def test_longest_bar_has_requested_width(self):
        chart = render_bar_chart(make_table(), ["SDC+ total (s)", "TSS total (s)"], width=40)
        longest = max(line.count("#") for line in chart.splitlines())
        assert longest == 40

    def test_bar_lengths_are_proportional(self):
        chart = render_bar_chart(make_table(), ["SDC+ total (s)"], width=40)
        bars = [line.count("#") for line in chart.splitlines() if "#" in line]
        assert len(bars) == 2
        assert bars[1] == 2 * bars[0]

    def test_empty_table(self):
        empty = ExperimentTable(experiment_id="none", title="empty")
        assert "(no rows)" in render_bar_chart(empty, ["x"])

    def test_zero_values_render_without_bars(self):
        table = ExperimentTable(experiment_id="z", title="zeros")
        table.add_row({"N": 1, "a (s)": 0.0})
        chart = render_bar_chart(table, ["a (s)"])
        assert "#" not in chart


class TestDefaultColumns:
    def test_prefers_total_and_time_columns(self):
        assert default_value_columns(make_table()) == ["SDC+ total (s)", "TSS total (s)"]

    def test_falls_back_to_numeric_columns(self):
        table = ExperimentTable(experiment_id="f", title="fallback")
        table.add_row({"name": "x", "count": 3})
        assert default_value_columns(table) == ["count"]

    def test_render_experiment_chart_uses_defaults(self):
        chart = render_experiment_chart(make_table())
        assert "TSS total (s)" in chart

    def test_render_experiment_chart_without_numeric_columns(self):
        table = ExperimentTable(experiment_id="t", title="text only")
        table.add_row({"label": "a", "value": "text"})
        # Falls back to the plain table rendering.
        assert "text only" in render_experiment_chart(table)


class TestCLIIntegration:
    def test_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["table1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
