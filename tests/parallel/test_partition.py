"""Unit tests for the dataset sharding strategies."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.parallel.partition import (
    PARTITIONERS,
    po_group_partition,
    resolve_partitioner,
    round_robin_partition,
)


def _all_ids(shards):
    ids = [record_id for shard in shards for record_id in shard.record_ids]
    return sorted(ids)


class TestRoundRobin:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_partition_covers_every_record_once(self, small_workload, num_shards):
        _, dataset = small_workload
        shards = round_robin_partition(dataset, num_shards)
        assert len(shards) == num_shards
        assert _all_ids(shards) == [record.id for record in dataset.records]

    def test_sizes_differ_by_at_most_one(self, small_workload):
        _, dataset = small_workload
        sizes = [len(shard) for shard in round_robin_partition(dataset, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_records(self, small_workload):
        _, dataset = small_workload
        few = dataset.subset([0, 1, 2])
        shards = round_robin_partition(few, 8)
        assert len(shards) == 8
        assert sum(len(shard) for shard in shards) == 3

    def test_local_ids_map_back_positionally(self, small_workload):
        _, dataset = small_workload
        for shard in round_robin_partition(dataset, 4):
            for position, record in enumerate(shard.dataset.records):
                assert record.id == position
                assert dataset[shard.record_ids[position]].values == record.values


class TestPoGroupPartition:
    def test_groups_stay_whole(self, small_workload):
        schema, dataset = small_workload
        shards = po_group_partition(dataset, 4)
        assert _all_ids(shards) == [record.id for record in dataset.records]
        home: dict[tuple, int] = {}
        for shard in shards:
            for record_id in shard.record_ids:
                key = schema.partial_values(dataset[record_id].values)
                assert home.setdefault(key, shard.shard_id) == shard.shard_id

    def test_balances_group_sizes(self, small_workload):
        _, dataset = small_workload
        sizes = [len(shard) for shard in po_group_partition(dataset, 2)]
        # LPT balancing cannot be perfect, but no shard should hold
        # everything when there are many groups.
        assert min(sizes) > 0
        assert max(sizes) < len(dataset)

    def test_to_only_schema_falls_back_to_round_robin(self):
        from repro.data.dataset import Dataset
        from repro.data.schema import Schema, TotalOrderAttribute

        schema = Schema([TotalOrderAttribute("x")])
        dataset = Dataset(schema, [(i,) for i in range(10)])
        shards = po_group_partition(dataset, 3)
        assert [shard.record_ids for shard in shards] == [
            shard.record_ids for shard in round_robin_partition(dataset, 3)
        ]

    def test_deterministic(self, small_workload):
        _, dataset = small_workload
        first = po_group_partition(dataset, 3)
        second = po_group_partition(dataset, 3)
        assert [s.record_ids for s in first] == [s.record_ids for s in second]


class TestResolution:
    def test_known_names(self):
        for name in PARTITIONERS:
            resolved_name, func = resolve_partitioner(name)
            assert resolved_name == name and callable(func)

    def test_callable_passthrough(self):
        name, func = resolve_partitioner(round_robin_partition)
        assert func is round_robin_partition
        assert name == "round_robin_partition"

    def test_unknown_name_rejected(self):
        with pytest.raises(QueryError):
            resolve_partitioner("hash")

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_shard_count_rejected(self, small_workload, bad):
        _, dataset = small_workload
        with pytest.raises(QueryError):
            round_robin_partition(dataset, bad)
        with pytest.raises(QueryError):
            po_group_partition(dataset, bad)
