"""Property and integration tests for the sharded executor.

The load-bearing property: for *any* dataset, *any* preference DAG topology,
*any* shard count and *either* partitioner, the partition → local skyline →
cross-shard merge pipeline returns exactly the single-process sTSS skyline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stss import stss_skyline
from repro.data.dataset import Dataset
from repro.data.schema import Schema, TotalOrderAttribute
from repro.engine.batch import random_query_preferences
from repro.exceptions import ExperimentError, QueryError
from repro.kernels import available_kernels
from repro.parallel import (
    MERGE_STRATEGIES,
    ShardedExecutor,
    resolve_merge_strategy,
    resolve_workers,
)
from repro.skyline.sfs import sfs_skyline
from tests.conftest import mixed_dataset_strategy


class TestShardedMatchesSingleProcess:
    """The hypothesis matrix of the acceptance criteria."""

    @given(
        dataset=mixed_dataset_strategy(max_rows=40),
        num_shards=st.integers(min_value=1, max_value=8),
        partitioner=st.sampled_from(["round-robin", "po-group"]),
        merge_strategy=st.sampled_from(MERGE_STRATEGIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_base_preferences(self, dataset, num_shards, partitioner, merge_strategy):
        reference = sorted(stss_skyline(dataset).skyline_ids)
        executor = ShardedExecutor(
            dataset,
            num_shards=num_shards,
            workers=0,
            partitioner=partitioner,
            merge_strategy=merge_strategy,
        )
        assert executor.query().skyline_ids == reference

    @given(
        dataset=mixed_dataset_strategy(max_rows=30),
        query_seed=st.integers(min_value=0, max_value=10_000),
        num_shards=st.integers(min_value=1, max_value=8),
        partitioner=st.sampled_from(["round-robin", "po-group"]),
        merge_strategy=st.sampled_from(MERGE_STRATEGIES),
    )
    @settings(max_examples=40, deadline=None)
    def test_dynamic_preference_overrides(
        self, dataset, query_seed, num_shards, partitioner, merge_strategy
    ):
        schema = dataset.schema
        # Random preferences re-drawn over each attribute's own domain
        # (dynamic queries re-rank a domain, they do not change it).
        overrides = random_query_preferences(schema, query_seed)
        reference = sorted(
            stss_skyline(
                dataset.with_schema(schema.replace_partial_order(overrides))
            ).skyline_ids
        )
        executor = ShardedExecutor(
            dataset,
            num_shards=num_shards,
            workers=0,
            partitioner=partitioner,
            merge_strategy=merge_strategy,
        )
        assert executor.query(overrides).skyline_ids == reference

    @pytest.mark.parametrize("kernel_name", available_kernels())
    @pytest.mark.parametrize("partitioner", ["round-robin", "po-group"])
    def test_workload_all_kernels(self, small_anticorrelated_workload, kernel_name, partitioner):
        schema, dataset = small_anticorrelated_workload
        reference = sorted(stss_skyline(dataset, kernel=kernel_name).skyline_ids)
        executor = ShardedExecutor(
            dataset, num_shards=5, workers=0, partitioner=partitioner, kernel=kernel_name
        )
        result = executor.query()
        assert result.skyline_ids == reference
        assert sum(result.local_skyline_sizes) >= len(reference)

    def test_to_only_schema_uses_sfs(self):
        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        rows = [(i % 7, (3 * i + 1) % 5) for i in range(40)]
        dataset = Dataset(schema, rows)
        reference = sorted(sfs_skyline(dataset).skyline_ids)
        for partitioner in ("round-robin", "po-group"):
            executor = ShardedExecutor(
                dataset, num_shards=4, workers=0, partitioner=partitioner
            )
            assert executor.query().skyline_ids == reference

    def test_empty_shards_are_harmless(self, small_workload):
        _, dataset = small_workload
        tiny = dataset.subset([0, 1])
        reference = sorted(stss_skyline(tiny).skyline_ids)
        executor = ShardedExecutor(tiny, num_shards=6, workers=0)
        assert executor.query().skyline_ids == reference


class TestWorkerPool:
    """The multiprocessing path must agree with the in-process path."""

    def test_pool_matches_inline(self, small_workload):
        schema, dataset = small_workload
        inline = ShardedExecutor(dataset, num_shards=4, workers=0)
        overrides = random_query_preferences(schema, 3)
        with ShardedExecutor(dataset, num_shards=4, workers=2) as pooled:
            assert pooled.query().skyline_ids == inline.query().skyline_ids
            assert (
                pooled.query(overrides).skyline_ids
                == inline.query(overrides).skyline_ids
            )
            assert pooled.summary()["pool_running"]
        assert not pooled.summary()["pool_running"]

    def test_close_is_idempotent(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=2, workers=1)
        executor.start()
        executor.close()
        executor.close()

    def test_per_query_state_reused_across_queries(self, small_workload):
        schema, dataset = small_workload
        with ShardedExecutor(dataset, num_shards=2, workers=1) as executor:
            first = executor.query(random_query_preferences(schema, 5))
            second = executor.query(random_query_preferences(schema, 5))
            assert first.skyline_ids == second.skyline_ids
            assert executor.queries_answered == 2


class TestValidationAndAccounting:
    def test_unknown_override_attribute_rejected(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=2, workers=0)
        with pytest.raises(QueryError):
            executor.query({"nope": dataset.schema.partial_order_attributes[0].dag})

    def test_domain_shrinking_override_rejected(self, small_workload):
        from repro.order.dag import PartialOrderDAG

        _, dataset = small_workload
        attribute = dataset.schema.partial_order_attributes[0]
        shrunk = PartialOrderDAG(list(attribute.domain)[:-1], [])
        executor = ShardedExecutor(dataset, num_shards=2, workers=0)
        with pytest.raises(QueryError):
            executor.query({attribute.name: shrunk})

    def test_bad_shard_count_rejected(self, small_workload):
        _, dataset = small_workload
        with pytest.raises(QueryError):
            ShardedExecutor(dataset, num_shards=0, workers=0)

    def test_result_accounting(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(
            dataset, num_shards=3, workers=0, merge_strategy="all-pairs"
        )
        result = executor.query()
        assert result.seconds >= result.seconds_local >= 0
        assert result.seconds >= result.seconds_merge >= 0
        assert len(result.local_skyline_sizes) == 3
        # With 3 non-empty local skylines, every ordered pair cross-examines
        # (minus targets eliminated early) — at most n*(n-1) calls.
        assert 0 < result.merge_batches <= 6
        assert result.merge_pairs == result.merge_batches  # legacy alias
        assert result.merge_checks > 0
        assert result.merge_strategy == "all-pairs"
        assert result.local_window[1] >= result.local_window[0]

    def test_sort_merge_accounting(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(
            dataset, num_shards=3, workers=0, merge_strategy="sort-merge"
        )
        result = executor.query()
        assert result.merge_strategy == "sort-merge"
        assert result.merge_batches > 0
        assert result.merge_checks > 0

    def test_summary_shape(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=2, workers=0, partitioner="po-group")
        executor.query()
        summary = executor.summary()
        assert summary["num_shards"] == 2
        assert summary["partitioner"] == "po-group"
        assert summary["queries_answered"] == 1
        assert sum(summary["shard_sizes"]) == len(dataset)


class TestMergeStrategies:
    def test_strategies_agree(self, small_anticorrelated_workload):
        _, dataset = small_anticorrelated_workload
        executor = ShardedExecutor(dataset, num_shards=5, workers=0)
        sort_merge = executor.query(merge_strategy="sort-merge")
        all_pairs = executor.query(merge_strategy="all-pairs")
        assert sort_merge.skyline_ids == all_pairs.skyline_ids
        assert sort_merge.merge_strategy == "sort-merge"
        assert all_pairs.merge_strategy == "all-pairs"

    def test_sort_merge_does_less_work_on_dominance_heavy_workloads(self):
        # The asymptotic win (stream x skyline instead of all-pairs squared)
        # needs local skylines well past one merge chunk; a 6k-tuple
        # anticorrelated workload gets there while staying fast.
        from repro.data.workloads import WorkloadSpec

        _, dataset = WorkloadSpec(
            name="merge-ab",
            distribution="anticorrelated",
            cardinality=6000,
            num_total_order=3,
            num_partial_order=1,
            dag_height=5,
            dag_density=0.8,
            seed=3,
        ).build()
        executor = ShardedExecutor(dataset, num_shards=4, workers=0)
        sort_merge = executor.query(merge_strategy="sort-merge")
        all_pairs = executor.query(merge_strategy="all-pairs")
        assert sort_merge.skyline_ids == all_pairs.skyline_ids
        assert sort_merge.merge_checks < all_pairs.merge_checks

    def test_phase_split_composes_to_query(self, small_workload):
        """local_phase + merge_phase is exactly what query() computes."""
        schema, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=4, workers=0)
        overrides = random_query_preferences(schema, 13)
        local_ids = executor.local_phase(overrides)
        assert len(local_ids) == 4
        for strategy in MERGE_STRATEGIES:
            merged, batches = executor.merge_phase(
                local_ids, overrides, strategy=strategy
            )
            assert merged == executor.query(overrides, merge_strategy=strategy).skyline_ids
            assert batches >= 0

    def test_sort_merge_survives_float_key_ties(self):
        """Regression: float summation can tie a dominator's sort key with
        its victim's (1e16 + 1.0 == 1e16), so the strictly-smaller-key
        invariant degrades to smaller-or-equal.  A key-tie run must never be
        split across merge chunks, or an equal-key dominator in the next
        chunk silently lets its victim survive and the two merge strategies
        diverge.  (Ground truth comes from brute force: SFS's precedence
        property rests on the same strict-key assumption, so in this corner
        the cross-examining merges are *more* correct than a single SFS
        pass.)
        """
        from repro.skyline.bruteforce import brute_force_skyline

        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        victim = (1e16, 1.0)  # id 0, shard 0 — key rounds to 1e16
        # 255 pairwise-incomparable fillers (better x, worse y than the tie
        # pair) whose keys sort strictly before 1e16, pushing the victim to
        # the last slot of the first 256-record merge chunk.
        fillers = [(1e16 - 4.0 * (index + 1), 2.0 + index) for index in range(255)]
        dominator = (1e16, 0.0)  # id 256 -> shard 1 of 3, key ties the victim's
        dataset = Dataset(schema, [victim, *fillers, dominator])
        truth = sorted(brute_force_skyline(dataset).skyline_ids)
        assert 0 not in truth  # the dominator kills the victim
        executor = ShardedExecutor(dataset, num_shards=3, workers=0)
        # The victim's shard does not hold its dominator, so the victim
        # reaches the merge phase and must be killed there by both
        # strategies.
        local_ids = executor.local_phase({})
        assert any(0 in ids for ids in local_ids)
        for strategy in MERGE_STRATEGIES:
            merged, _ = executor.merge_phase(local_ids, {}, strategy=strategy)
            assert merged == truth, strategy

    def test_concurrent_queries_agree_with_serial(self, small_workload):
        import threading

        schema, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=3, workers=0)
        seeds = list(range(60, 68))
        serial = {seed: executor.query(random_query_preferences(schema, seed)).skyline_ids for seed in seeds}
        errors: list[BaseException] = []

        def client(seed: int) -> None:
            try:
                result = executor.query(random_query_preferences(schema, seed))
                assert result.skyline_ids == serial[seed]
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=client, args=(seed,)) for seed in seeds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert executor.queries_answered == 2 * len(seeds)


class TestResolveMergeStrategy:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MERGE", "all-pairs")
        assert resolve_merge_strategy("sort-merge") == "sort-merge"

    def test_env_fallback_and_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MERGE", "all-pairs")
        assert resolve_merge_strategy(None) == "all-pairs"
        monkeypatch.delenv("REPRO_MERGE")
        assert resolve_merge_strategy(None) == "sort-merge"

    def test_invalid_value_rejected(self):
        with pytest.raises(ExperimentError, match="merge strategy"):
            resolve_merge_strategy("zipper")

    def test_invalid_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_MERGE", "zipper")
        with pytest.raises(ExperimentError, match="REPRO_MERGE"):
            resolve_merge_strategy(None)


class TestResolveWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2) == 2
        assert resolve_workers("3") == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(None) == 4
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 0

    @pytest.mark.parametrize("bad", ["nope", "-1", -3])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ExperimentError):
            resolve_workers(bad)

    @pytest.mark.parametrize("bad", ["nope", "-2", "1.5"])
    def test_invalid_env_value_names_the_variable(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ExperimentError, match="REPRO_WORKERS"):
            resolve_workers(None)


class TestColumnarShardShipping:
    """The frame path ships column blocks — never ``Record`` objects."""

    @staticmethod
    def _assert_no_records(payload) -> bytes:
        """Pickle ``payload`` while asserting no Record/Dataset is reached."""
        import io
        import pickle

        from repro.data.dataset import Record

        class GuardPickler(pickle.Pickler):
            def persistent_id(self, obj):
                assert not isinstance(obj, Record), "a Record reached the wire"
                assert not isinstance(obj, Dataset), "a Dataset reached the wire"
                return None

        buffer = io.BytesIO()
        GuardPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(payload)
        return buffer.getvalue()

    def test_worker_payload_contains_no_record_objects(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(
            dataset, num_shards=4, workers=2, use_frame=True
        )
        for worker in range(executor.workers):
            owned = [
                index
                for index in range(executor.num_shards)
                if index % executor.workers == worker
            ]
            self._assert_no_records(executor._worker_initargs(owned))

    def test_record_path_still_ships_datasets(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=2, workers=1, use_frame=False)
        payload = executor._worker_initargs([0, 1])
        with pytest.raises(AssertionError):
            self._assert_no_records(payload)

    def test_frame_pool_matches_record_pool(self, small_workload):
        schema, dataset = small_workload
        overrides = random_query_preferences(schema, 3)
        with ShardedExecutor(
            dataset, num_shards=2, workers=2, use_frame=True
        ) as pooled:
            frame_result = pooled.query(overrides)
        inline = ShardedExecutor(dataset, num_shards=2, workers=0, use_frame=False)
        assert frame_result.skyline_ids == inline.query(overrides).skyline_ids

    def test_mismatched_frame_rejected(self, small_workload):
        from repro.data.columns import EncodedFrame

        _, dataset = small_workload
        frame = EncodedFrame.from_dataset(dataset).take([0, 1, 2])
        with pytest.raises(QueryError, match="rows"):
            ShardedExecutor(dataset, num_shards=2, frame=frame)
