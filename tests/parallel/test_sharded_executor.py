"""Property and integration tests for the sharded executor.

The load-bearing property: for *any* dataset, *any* preference DAG topology,
*any* shard count and *either* partitioner, the partition → local skyline →
cross-shard merge pipeline returns exactly the single-process sTSS skyline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stss import stss_skyline
from repro.data.dataset import Dataset
from repro.data.schema import Schema, TotalOrderAttribute
from repro.engine.batch import random_query_preferences
from repro.exceptions import ExperimentError, QueryError
from repro.kernels import available_kernels
from repro.parallel import ShardedExecutor, resolve_workers
from repro.skyline.sfs import sfs_skyline
from tests.conftest import mixed_dataset_strategy


class TestShardedMatchesSingleProcess:
    """The hypothesis matrix of the acceptance criteria."""

    @given(
        dataset=mixed_dataset_strategy(max_rows=40),
        num_shards=st.integers(min_value=1, max_value=8),
        partitioner=st.sampled_from(["round-robin", "po-group"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_base_preferences(self, dataset, num_shards, partitioner):
        reference = sorted(stss_skyline(dataset).skyline_ids)
        executor = ShardedExecutor(
            dataset, num_shards=num_shards, workers=0, partitioner=partitioner
        )
        assert executor.query().skyline_ids == reference

    @given(
        dataset=mixed_dataset_strategy(max_rows=30),
        query_seed=st.integers(min_value=0, max_value=10_000),
        num_shards=st.integers(min_value=1, max_value=8),
        partitioner=st.sampled_from(["round-robin", "po-group"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_dynamic_preference_overrides(
        self, dataset, query_seed, num_shards, partitioner
    ):
        schema = dataset.schema
        # Random preferences re-drawn over each attribute's own domain
        # (dynamic queries re-rank a domain, they do not change it).
        overrides = random_query_preferences(schema, query_seed)
        reference = sorted(
            stss_skyline(
                dataset.with_schema(schema.replace_partial_order(overrides))
            ).skyline_ids
        )
        executor = ShardedExecutor(
            dataset, num_shards=num_shards, workers=0, partitioner=partitioner
        )
        assert executor.query(overrides).skyline_ids == reference

    @pytest.mark.parametrize("kernel_name", available_kernels())
    @pytest.mark.parametrize("partitioner", ["round-robin", "po-group"])
    def test_workload_all_kernels(self, small_anticorrelated_workload, kernel_name, partitioner):
        schema, dataset = small_anticorrelated_workload
        reference = sorted(stss_skyline(dataset, kernel=kernel_name).skyline_ids)
        executor = ShardedExecutor(
            dataset, num_shards=5, workers=0, partitioner=partitioner, kernel=kernel_name
        )
        result = executor.query()
        assert result.skyline_ids == reference
        assert sum(result.local_skyline_sizes) >= len(reference)

    def test_to_only_schema_uses_sfs(self):
        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        rows = [(i % 7, (3 * i + 1) % 5) for i in range(40)]
        dataset = Dataset(schema, rows)
        reference = sorted(sfs_skyline(dataset).skyline_ids)
        for partitioner in ("round-robin", "po-group"):
            executor = ShardedExecutor(
                dataset, num_shards=4, workers=0, partitioner=partitioner
            )
            assert executor.query().skyline_ids == reference

    def test_empty_shards_are_harmless(self, small_workload):
        _, dataset = small_workload
        tiny = dataset.subset([0, 1])
        reference = sorted(stss_skyline(tiny).skyline_ids)
        executor = ShardedExecutor(tiny, num_shards=6, workers=0)
        assert executor.query().skyline_ids == reference


class TestWorkerPool:
    """The multiprocessing path must agree with the in-process path."""

    def test_pool_matches_inline(self, small_workload):
        schema, dataset = small_workload
        inline = ShardedExecutor(dataset, num_shards=4, workers=0)
        overrides = random_query_preferences(schema, 3)
        with ShardedExecutor(dataset, num_shards=4, workers=2) as pooled:
            assert pooled.query().skyline_ids == inline.query().skyline_ids
            assert (
                pooled.query(overrides).skyline_ids
                == inline.query(overrides).skyline_ids
            )
            assert pooled.summary()["pool_running"]
        assert not pooled.summary()["pool_running"]

    def test_close_is_idempotent(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=2, workers=1)
        executor.start()
        executor.close()
        executor.close()

    def test_per_query_state_reused_across_queries(self, small_workload):
        schema, dataset = small_workload
        with ShardedExecutor(dataset, num_shards=2, workers=1) as executor:
            first = executor.query(random_query_preferences(schema, 5))
            second = executor.query(random_query_preferences(schema, 5))
            assert first.skyline_ids == second.skyline_ids
            assert executor.queries_answered == 2


class TestValidationAndAccounting:
    def test_unknown_override_attribute_rejected(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=2, workers=0)
        with pytest.raises(QueryError):
            executor.query({"nope": dataset.schema.partial_order_attributes[0].dag})

    def test_domain_shrinking_override_rejected(self, small_workload):
        from repro.order.dag import PartialOrderDAG

        _, dataset = small_workload
        attribute = dataset.schema.partial_order_attributes[0]
        shrunk = PartialOrderDAG(list(attribute.domain)[:-1], [])
        executor = ShardedExecutor(dataset, num_shards=2, workers=0)
        with pytest.raises(QueryError):
            executor.query({attribute.name: shrunk})

    def test_bad_shard_count_rejected(self, small_workload):
        _, dataset = small_workload
        with pytest.raises(QueryError):
            ShardedExecutor(dataset, num_shards=0, workers=0)

    def test_result_accounting(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=3, workers=0)
        result = executor.query()
        assert result.seconds >= result.seconds_local >= 0
        assert result.seconds >= result.seconds_merge >= 0
        assert len(result.local_skyline_sizes) == 3
        # With 3 non-empty local skylines, every ordered pair cross-examines
        # (minus targets eliminated early) — at most n*(n-1) calls.
        assert 0 < result.merge_pairs <= 6
        assert result.merge_checks > 0

    def test_summary_shape(self, small_workload):
        _, dataset = small_workload
        executor = ShardedExecutor(dataset, num_shards=2, workers=0, partitioner="po-group")
        executor.query()
        summary = executor.summary()
        assert summary["num_shards"] == 2
        assert summary["partitioner"] == "po-group"
        assert summary["queries_answered"] == 1
        assert sum(summary["shard_sizes"]) == len(dataset)


class TestResolveWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2) == 2
        assert resolve_workers("3") == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(None) == 4
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 0

    @pytest.mark.parametrize("bad", ["nope", "-1", -3])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ExperimentError):
            resolve_workers(bad)
