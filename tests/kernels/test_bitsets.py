"""Unit tests for the bitset-packed PO-code dominance closure."""

from __future__ import annotations

import pytest

from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.kernels.bitsets import (
    WORD_BITS,
    DominanceBitset,
    dominance_bitsets,
)
from repro.kernels.tables import PreferenceTable, RecordTables, TDominanceTables
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import encode_domain


def _chain(size: int) -> PartialOrderDAG:
    values = [f"c{i}" for i in range(size)]
    return PartialOrderDAG(values, list(zip(values, values[1:])))


def _antichain(size: int) -> PartialOrderDAG:
    return PartialOrderDAG([f"a{i}" for i in range(size)])


def _diamond() -> PartialOrderDAG:
    return PartialOrderDAG(
        ["top", "left", "right", "bottom"],
        [("top", "left"), ("top", "right"), ("left", "bottom"), ("right", "bottom")],
    )


def _assert_matches_table(bitset: DominanceBitset, table: PreferenceTable) -> None:
    size = len(table.values)
    for better in range(size):
        for worse in range(size):
            assert bitset.test(better, worse) == table.pref_or_equal[better][worse], (
                better,
                worse,
            )


class TestDominanceBitset:
    @pytest.mark.parametrize(
        "dag",
        [_chain(1), _chain(5), _antichain(4), _diamond()],
        ids=["singleton", "chain", "antichain", "diamond"],
    )
    def test_packs_exactly_the_preference_table(self, dag):
        table = PreferenceTable.from_dag(dag)
        bitset = DominanceBitset.from_table(table)
        assert bitset.cardinality == len(dag.values)
        assert bitset.num_words == 1
        _assert_matches_table(bitset, table)

    @pytest.mark.parametrize("size", [64, 65, 130])
    def test_multi_word_domains(self, size):
        """Domains past one machine word split across multiple uint64 words."""
        table = PreferenceTable.from_dag(_chain(size))
        bitset = DominanceBitset.from_table(table)
        assert bitset.num_words == (size + WORD_BITS - 1) // WORD_BITS
        assert all(len(row) == bitset.num_words for row in bitset.rows)
        _assert_matches_table(bitset, table)
        # Spot the word boundary explicitly: a chain's head dominates its
        # tail, so bit 64+ of row 0 must be set while the reverse is clear.
        assert bitset.test(0, size - 1)
        assert not bitset.test(size - 1, 0)

    def test_every_word_fits_uint64(self):
        bitset = DominanceBitset.from_table(PreferenceTable.from_dag(_chain(100)))
        for row in bitset.rows:
            for word in row:
                assert 0 <= word < (1 << WORD_BITS)

    def test_reflexive_bits_always_set(self):
        for dag in (_chain(3), _antichain(3), _diamond(), _chain(70)):
            bitset = DominanceBitset.from_table(PreferenceTable.from_dag(dag))
            for code in range(bitset.cardinality):
                assert bitset.test(code, code)


class TestDominanceBitsetsCache:
    def test_cached_per_tables_instance(self):
        schema = Schema(
            [
                TotalOrderAttribute("price"),
                PartialOrderAttribute("airline", _diamond()),
                PartialOrderAttribute("hotel", _chain(4)),
            ]
        )
        tables = RecordTables.from_schema(schema)
        first = dominance_bitsets(tables)
        assert len(first) == 2
        assert dominance_bitsets(tables) is first
        for bitset, table in zip(first, tables.attributes):
            _assert_matches_table(bitset, table)

    def test_tdominance_tables_use_exact_closure(self):
        encoding = encode_domain(_diamond())
        tables = TDominanceTables.from_encodings(1, [encoding])
        (bitset,) = dominance_bitsets(tables)
        _assert_matches_table(bitset, tables.attributes[0])


class TestNumpyWordArrays:
    def test_word_arrays_match_python_rows(self):
        numpy = pytest.importorskip("numpy")
        from repro.kernels.bitsets import attribute_word_arrays

        schema = Schema(
            [
                TotalOrderAttribute("price"),
                PartialOrderAttribute("big", _chain(70)),
                PartialOrderAttribute("small", _diamond()),
            ]
        )
        tables = RecordTables.from_schema(schema)
        arrays = attribute_word_arrays(tables)
        bitsets = dominance_bitsets(tables)
        assert len(arrays) == len(bitsets) == 2
        for words, bitset in zip(arrays, bitsets):
            assert words.dtype == numpy.uint64
            assert words.shape == (bitset.cardinality, bitset.num_words)
            assert [tuple(int(w) for w in row) for row in words] == list(bitset.rows)
        assert attribute_word_arrays(tables) is arrays

    def test_packed_cube_pads_to_common_shape(self):
        numpy = pytest.importorskip("numpy")
        from repro.kernels.bitsets import packed_word_cube

        schema = Schema(
            [
                TotalOrderAttribute("price"),
                PartialOrderAttribute("big", _chain(70)),
                PartialOrderAttribute("small", _diamond()),
            ]
        )
        tables = RecordTables.from_schema(schema)
        cube = packed_word_cube(tables)
        bitsets = dominance_bitsets(tables)
        assert cube.dtype == numpy.uint64
        assert cube.shape == (2, 70, 2)
        for attribute, bitset in enumerate(bitsets):
            for code, row in enumerate(bitset.rows):
                padded = tuple(row) + (0,) * (cube.shape[2] - len(row))
                assert tuple(int(w) for w in cube[attribute, code]) == padded
            # Padding rows beyond the domain stay all-zero.
            assert not cube[attribute, bitset.cardinality :].any()
        assert packed_word_cube(tables) is cube
