"""JIT kernel logic validated without numba: stub the compiler, run the loops.

The ``jit`` backend's ``@njit`` functions are deliberately written as plain
scalar loops that are *also valid Python*.  These tests install a no-op
``numba`` stub in ``sys.modules``, import :mod:`repro.kernels.jit_kernel`
against it, and drive every store surface side by side with the pure-Python
reference — asserting identical verdicts **and identical dominance-check
counts** (the fused loops early-exit at exactly the same positions as the
reference, unlike the NumPy backend which charges whole blocks).

When numba is actually installed the stub would shadow the real compiler, and
the compiled path is already exercised by the three-way matrix in
``test_kernel_agreement.py`` — so this module is skipped there.
"""

from __future__ import annotations

import importlib
import random
import sys
import types

import pytest

pytest.importorskip("numpy")

try:  # pragma: no cover - exercised only on numba-equipped machines
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

pytestmark = pytest.mark.skipif(
    HAVE_NUMBA,
    reason="real numba present: compiled path covered by the agreement matrix",
)

from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.kernels.purepython import PurePythonKernel
from repro.kernels.tables import RecordTables, TDominanceTables
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import encode_domain
from repro.skyline.base import SkylineStats


def _stub_njit(*args, **kwargs):
    """Accept both ``@njit`` and ``@njit(cache=True)`` forms."""
    if args and callable(args[0]):
        return args[0]

    def decorate(fn):
        return fn

    return decorate


@pytest.fixture(scope="module")
def jit_kernel():
    """A JitKernel whose compiled functions run as plain Python."""
    stub = types.ModuleType("numba")
    stub.njit = _stub_njit
    saved_numba = sys.modules.get("numba")
    saved_module = sys.modules.get("repro.kernels.jit_kernel")
    sys.modules["numba"] = stub
    sys.modules.pop("repro.kernels.jit_kernel", None)
    try:
        module = importlib.import_module("repro.kernels.jit_kernel")
        yield module.JitKernel()
    finally:
        if saved_numba is None:
            sys.modules.pop("numba", None)
        else:  # pragma: no cover - only when numba is really installed
            sys.modules["numba"] = saved_numba
        if saved_module is None:
            sys.modules.pop("repro.kernels.jit_kernel", None)
        else:  # pragma: no cover
            sys.modules["repro.kernels.jit_kernel"] = saved_module


PURE = PurePythonKernel()


def _random_dag(rng: random.Random, size: int, density: float) -> PartialOrderDAG:
    values = [f"v{i}" for i in range(size)]
    edges = [
        (values[i], values[j])
        for i in range(size)
        for j in range(i + 1, size)
        if rng.random() < density
    ]
    return PartialOrderDAG(values, edges)


def _paired_counters():
    return SkylineStats(), SkylineStats()


def _assert_counts(counters, context):
    assert counters[0].dominance_checks == counters[1].dominance_checks, context


class TestVectorStoreParity:
    def test_verdicts_and_check_counts(self, jit_kernel):
        rng = random.Random(11)
        for trial in range(25):
            dims = rng.randint(1, 4)
            rows = [
                tuple(float(rng.randint(0, 5)) for _ in range(dims))
                for _ in range(rng.randint(1, 12))
            ]
            stores = [k.load_vector_store(dims, rows) for k in (PURE, jit_kernel)]
            for _ in range(6):
                target = tuple(float(rng.randint(0, 5)) for _ in range(dims))
                counters = _paired_counters()
                verdicts = [
                    s.any_dominates(target, c) for s, c in zip(stores, counters)
                ]
                assert verdicts[0] == verdicts[1], trial
                _assert_counts(counters, (trial, "any_dominates"))
                for exclude in (False, True):
                    counters = _paired_counters()
                    weak = [
                        s.any_weakly_dominates(target, c, exclude_equal=exclude)
                        for s, c in zip(stores, counters)
                    ]
                    assert weak[0] == weak[1], (trial, exclude)
                    _assert_counts(counters, (trial, "weak", exclude))
            targets = [
                tuple(float(rng.randint(0, 5)) for _ in range(dims)) for _ in range(7)
            ]
            counters = _paired_counters()
            masks = [s.block_dominated_mask(targets, c) for s, c in zip(stores, counters)]
            assert list(masks[0]) == list(masks[1]), trial
            _assert_counts(counters, (trial, "block"))
            corners = [
                tuple(float(rng.randint(0, 3)) for _ in range(dims)) for _ in range(5)
            ]
            for exclude in (False, True):
                counters = _paired_counters()
                mbr = [
                    s.mbr_block_dominated(corners, c, exclude_equal=exclude)
                    for s, c in zip(stores, counters)
                ]
                assert list(mbr[0]) == list(mbr[1]), (trial, exclude)
                _assert_counts(counters, (trial, "mbr", exclude))

    def test_pareto_mask_matches_reference(self, jit_kernel):
        rng = random.Random(5)
        for dims in (1, 2, 3, 4):
            block = [
                tuple(float(rng.randint(0, 4)) for _ in range(dims)) for _ in range(40)
            ]
            assert jit_kernel.pareto_mask(block) == PURE.pareto_mask(block), dims


class TestRecordStoreParity:
    def test_verdicts_and_check_counts(self, jit_kernel):
        rng = random.Random(7)
        for trial in range(20):
            num_to = rng.randint(1, 2)
            num_po = rng.randint(1, 2)
            dags = [_random_dag(rng, rng.randint(2, 6), 0.4) for _ in range(num_po)]
            attributes = [TotalOrderAttribute(f"t{i}") for i in range(num_to)]
            attributes += [
                PartialOrderAttribute(f"p{i}", dag) for i, dag in enumerate(dags)
            ]
            tables = RecordTables.from_schema(Schema(attributes))

            def encode(rng=rng, tables=tables, dags=dags, num_to=num_to):
                to_values = tuple(float(rng.randint(0, 5)) for _ in range(num_to))
                codes = tables.encode_po(tuple(rng.choice(d.values) for d in dags))
                return to_values, codes

            members = [encode() for _ in range(rng.randint(1, 12))]
            stores = [
                k.load_record_store(
                    tables, [m[0] for m in members], [m[1] for m in members]
                )
                for k in (PURE, jit_kernel)
            ]
            targets = [encode() for _ in range(7)]
            for to_values, codes in targets:
                counters = _paired_counters()
                verdicts = [
                    s.any_dominates(to_values, codes, c)
                    for s, c in zip(stores, counters)
                ]
                assert verdicts[0] == verdicts[1], trial
                _assert_counts(counters, (trial, "any"))
                counters = _paired_counters()
                masks = [
                    s.dominance_masks(to_values, codes, c)
                    for s, c in zip(stores, counters)
                ]
                assert masks[0] == (masks[1][0], list(masks[1][1])), trial
                _assert_counts(counters, (trial, "masks"))
            counters = _paired_counters()
            block = [s.block_dominated_mask(targets, c) for s, c in zip(stores, counters)]
            assert list(block[0]) == list(block[1]), trial
            _assert_counts(counters, (trial, "block"))
            counters = _paired_counters()
            columns = [
                s.block_dominated_columns(
                    [t[0] for t in targets], [t[1] for t in targets], c
                )
                for s, c in zip(stores, counters)
            ]
            assert list(columns[0]) == list(columns[1]), trial
            _assert_counts(counters, (trial, "columns"))


class TestTDominanceStoreParity:
    def test_verdicts_and_check_counts(self, jit_kernel):
        rng = random.Random(3)
        for trial in range(20):
            num_to = rng.randint(1, 2)
            num_po = rng.randint(1, 2)
            dags = [_random_dag(rng, rng.randint(2, 6), 0.4) for _ in range(num_po)]
            encodings = [encode_domain(dag) for dag in dags]
            tables = TDominanceTables.from_encodings(num_to, encodings)

            def point(rng=rng, dags=dags, num_to=num_to):
                to_values = tuple(float(rng.randint(0, 5)) for _ in range(num_to))
                codes = tuple(rng.randrange(len(d.values)) for d in dags)
                return to_values, codes

            members = [point() for _ in range(rng.randint(1, 12))]
            stores = [
                k.load_tdominance_store(
                    tables, [m[0] for m in members], [m[1] for m in members]
                )
                for k in (PURE, jit_kernel)
            ]
            targets = [point() for _ in range(7)]
            for to_values, codes in targets:
                for start in (0, rng.randrange(len(members) + 1)):
                    counters = _paired_counters()
                    verdicts = [
                        s.any_weakly_dominates(to_values, codes, c, start=start)
                        for s, c in zip(stores, counters)
                    ]
                    assert verdicts[0] == verdicts[1], (trial, start)
                    _assert_counts(counters, (trial, "weak", start))
            counters = _paired_counters()
            block = [
                s.block_weakly_dominated(
                    [t[0] for t in targets], [t[1] for t in targets], c
                )
                for s, c in zip(stores, counters)
            ]
            assert list(block[0]) == list(block[1]), trial
            _assert_counts(counters, (trial, "block"))

            for to_values, codes in targets[:3]:
                ordinal_low = tuple(code + 1 for code in codes)
                range_mbis = []
                for _ in range(num_po):
                    if rng.random() < 0.15:
                        range_mbis.append((float("inf"), float("-inf")))
                    else:
                        low = float(rng.randint(0, 6))
                        range_mbis.append((low, low + rng.randint(0, 6)))
                for start in (0, rng.randrange(len(members) + 1)):
                    counters = _paired_counters()
                    candidates = [
                        s.mbb_candidates(
                            to_values, ordinal_low, range_mbis, c, start=start
                        )
                        for s, c in zip(stores, counters)
                    ]
                    assert list(candidates[0]) == list(candidates[1]), (trial, start)
                    _assert_counts(counters, (trial, "mbb", start))
                counters = _paired_counters()
                block = [
                    s.mbb_block_candidates(
                        [to_values], [ordinal_low], [range_mbis], c
                    )
                    for s, c in zip(stores, counters)
                ]
                assert [list(x) for x in block[0]] == [list(x) for x in block[1]], trial


class TestWarmup:
    def test_warmup_touches_every_compiled_function(self, jit_kernel):
        assert jit_kernel.warmup() is True
        # Idempotent: a second call is a no-op but still reports success.
        assert jit_kernel.warmup() is True
