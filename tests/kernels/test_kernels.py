"""Unit tests for the kernel registry, tables and reference backend."""

from __future__ import annotations

import pytest

from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.exceptions import ExperimentError
from repro.kernels import (
    PurePythonKernel,
    RecordTables,
    TDominanceTables,
    available_kernels,
    get_kernel,
    resolve_kernel,
    set_default_kernel,
)
from repro.order.builders import paper_example_dag
from repro.order.encoding import encode_domain
from repro.order.intervals import IntervalSet
from repro.skyline.base import SkylineStats


class TestRegistry:
    def test_purepython_always_available(self):
        assert "purepython" in available_kernels()
        assert isinstance(get_kernel("purepython"), PurePythonKernel)

    def test_aliases(self):
        assert get_kernel("python") is get_kernel("purepython")
        assert get_kernel("pure") is get_kernel("purepython")

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError):
            get_kernel("fortran")

    def test_resolve_accepts_instances_names_and_none(self):
        kernel = get_kernel("purepython")
        assert resolve_kernel(kernel) is kernel
        assert resolve_kernel("purepython") is kernel
        assert resolve_kernel(None).name in available_kernels()

    def test_default_override(self):
        try:
            set_default_kernel("purepython")
            assert get_kernel().name == "purepython"
        finally:
            set_default_kernel(None)

    def test_instances_are_cached(self):
        assert get_kernel("purepython") is get_kernel("purepython")


class TestJitRegistration:
    def test_jit_listed_only_with_numba(self):
        try:
            import numba  # noqa: F401

            have_numba = True
        except ImportError:
            have_numba = False
        try:
            import numpy  # noqa: F401

            have_numpy = True
        except ImportError:
            have_numpy = False
        assert ("jit" in available_kernels()) == (have_numba and have_numpy)

    def test_numba_alias(self):
        import warnings

        import repro.kernels as kernels

        kernels._instances.pop("jit", None)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                assert get_kernel("numba") is get_kernel("jit")
        finally:
            kernels._instances.pop("jit", None)

    def test_missing_numba_falls_back_with_warning(self):
        """Requesting jit without numba degrades gracefully — once."""
        try:
            import numba  # noqa: F401

            pytest.skip("numba installed: the real backend is returned instead")
        except ImportError:
            pass
        import repro.kernels as kernels

        kernels._instances.pop("jit", None)
        try:
            with pytest.warns(RuntimeWarning, match=r"repro\[jit\]"):
                kernel = get_kernel("jit")
            # Best remaining backend, fully functional.
            assert kernel.name in ("numpy", "purepython")
            assert kernel.pareto_mask([(0.0, 1.0), (1.0, 0.0), (2.0, 2.0)]) == [
                True,
                True,
                False,
            ]
            # Cached under the canonical name: no second warning.
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                assert get_kernel("jit") is kernel
        finally:
            kernels._instances.pop("jit", None)

    def test_warmup_default_is_noop(self):
        # Non-compiled backends report "nothing to warm".
        assert get_kernel("purepython").warmup() is False


class TestRecordTables:
    def test_matrix_matches_dag_preference(self):
        dag = paper_example_dag()
        schema = Schema(
            [TotalOrderAttribute("x"), PartialOrderAttribute("airline", dag)]
        )
        tables = RecordTables.from_schema(schema)
        table = tables.attributes[0]
        for i, better in enumerate(table.values):
            for j, worse in enumerate(table.values):
                expected = better == worse or dag.is_preferred(better, worse)
                assert table.pref_or_equal[i][j] == expected

    def test_encode_po_roundtrip(self):
        dag = paper_example_dag()
        tables = RecordTables.from_encodings(0, [encode_domain(dag)])
        for value in dag.values:
            code = tables.encode_po((value,))[0]
            assert tables.attributes[0].values[code] == value


class TestTDominanceTables:
    def test_mbi_bounds_cover_interval_sets(self):
        encoding = encode_domain(paper_example_dag())
        tables = TDominanceTables.from_encodings(1, [encoding])
        for code, interval_set in enumerate(tables.interval_sets[0]):
            mbi = interval_set.bounding_interval()
            assert tables.mbi_low[0][code] == mbi.low
            assert tables.mbi_high[0][code] == mbi.high


class TestCounters:
    def test_vector_store_charges_counter(self):
        kernel = get_kernel("purepython")
        store = kernel.vector_store(2)
        for vector in [(0, 1), (1, 0), (2, 2)]:
            store.append(vector)
        stats = SkylineStats()
        store.any_dominates((3, 3), counter=stats)
        assert stats.dominance_checks >= 1

    def test_record_store_compress(self):
        schema = Schema(
            [TotalOrderAttribute("x"), PartialOrderAttribute("p", paper_example_dag())]
        )
        tables = RecordTables.from_schema(schema)
        for kernel_name in available_kernels():
            store = get_kernel(kernel_name).record_store(tables)
            store.append((1.0,), (0,))
            store.append((2.0,), (0,))
            store.append((3.0,), (0,))
            store.compress([True, False, True])
            assert len(store) == 2
            # (2.0, same PO) was removed, so it is no longer dominated... but
            # (1.0,) still dominates everything weaker.
            assert store.any_dominates((4.0,), (0,))


class TestBoundingIntervals:
    def test_bounding_interval_of_set(self):
        interval_set = IntervalSet([(1, 2), (5, 9)])
        assert (
            interval_set.bounding_interval().low,
            interval_set.bounding_interval().high,
        ) == (1, 9)

    def test_kernel_helper_matches(self):
        sets = [IntervalSet([(1, 2), (4, 6)]), IntervalSet([(3, 3)])]
        intervals = get_kernel("purepython").bounding_intervals(sets)
        assert [(iv.low, iv.high) for iv in intervals] == [(1, 6), (3, 3)]
