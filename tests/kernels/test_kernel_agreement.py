"""Property tests: every kernel backend agrees with the pure-Python reference.

The reference backend defines the semantics; these tests drive every backend
available in the environment (purepython + numpy, plus jit when numba is
installed — the full three-way matrix) with random datasets and random DAG
topologies (hypothesis) and assert they return identical verdicts for every
operation of the kernel interface.  Skipped entirely when NumPy is
unavailable (there is only one backend then).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import TSSMapping
from repro.core.tdominance import TDominanceChecker
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.kernels import (
    RecordTables,
    TDominanceTables,
    available_kernels,
    get_kernel,
)
from repro.order.encoding import encode_domain
from repro.order.intervals import IntervalSet
from tests.conftest import mixed_dataset_strategy, random_dag_strategy

numpy = pytest.importorskip("numpy")

PURE = get_kernel("purepython")
#: Every backend usable here, reference first ("jit" joins when numba is
#: importable, widening every test below to the three-way matrix).
KERNELS = tuple(get_kernel(name) for name in available_kernels())
OTHERS = KERNELS[1:]


def _assert_all_match(values, context=""):
    """Each backend's value equals the reference backend's (index 0)."""
    reference = values[0]
    for kernel, value in zip(KERNELS[1:], values[1:]):
        assert value == reference, (context, kernel.name)


def _interval_set_strategy(max_point: int = 30) -> st.SearchStrategy[IntervalSet]:
    @st.composite
    def build(draw):
        count = draw(st.integers(min_value=0, max_value=4))
        intervals = []
        for _ in range(count):
            low = draw(st.integers(min_value=1, max_value=max_point))
            high = draw(st.integers(min_value=low, max_value=max_point))
            intervals.append((low, high))
        return IntervalSet(intervals)

    return build()


class TestVectorStoreAgreement:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dims=st.integers(min_value=1, max_value=4),
        rows=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_dominance_verdicts_match(self, seed, dims, rows):
        rng = random.Random(seed)
        block = [tuple(rng.randint(0, 5) for _ in range(dims)) for _ in range(rows)]
        candidates = [tuple(rng.randint(0, 5) for _ in range(dims)) for _ in range(15)]
        stores = []
        for kernel in KERNELS:
            store = kernel.vector_store(dims)
            for vector in block:
                store.append(vector)
            stores.append(store)
        for candidate in candidates:
            _assert_all_match([s.any_dominates(candidate) for s in stores])
            _assert_all_match([s.any_weakly_dominates(candidate) for s in stores])
            _assert_all_match(
                [s.any_weakly_dominates(candidate, exclude_equal=True) for s in stores]
            )


class TestRecordStoreAgreement:
    @given(dataset=mixed_dataset_strategy(max_rows=30))
    @settings(max_examples=30, deadline=None)
    def test_dominance_and_masks_match(self, dataset):
        schema = dataset.schema
        tables = RecordTables.from_schema(schema)
        encoded = [
            (
                schema.canonical_to_values(record.values),
                tables.encode_po(schema.partial_values(record.values)),
            )
            for record in dataset.records
        ]
        split = max(1, len(encoded) // 2)
        members, candidates = encoded[:split], encoded[split:] or encoded[:1]
        stores = []
        for kernel in KERNELS:
            store = kernel.record_store(tables)
            for to_values, po_codes in members:
                store.append(to_values, po_codes)
            stores.append(store)
        for to_values, po_codes in candidates:
            _assert_all_match([s.any_dominates(to_values, po_codes) for s in stores])
            masks = [s.dominance_masks(to_values, po_codes) for s in stores]
            _assert_all_match([(m[0], list(m[1])) for m in masks])
        # Batched cross-examination agrees too.
        _assert_all_match(
            [
                kernel.record_block_dominated_mask(tables, encoded, encoded)
                for kernel in KERNELS
            ]
        )
        # ... and so does the merge-window primitive, which must also match
        # per-candidate any_dominates verdicts against the same members.
        window_masks = [store.block_dominated_mask(encoded) for store in stores]
        _assert_all_match(window_masks)
        assert window_masks[0] == [
            stores[0].any_dominates(to_values, po_codes)
            for to_values, po_codes in encoded
        ]

    @given(dataset=mixed_dataset_strategy(max_rows=24))
    @settings(max_examples=20, deadline=None)
    def test_compress_keeps_agreement(self, dataset):
        schema = dataset.schema
        tables = RecordTables.from_schema(schema)
        encoded = [
            (
                schema.canonical_to_values(record.values),
                tables.encode_po(schema.partial_values(record.values)),
            )
            for record in dataset.records
        ]
        rng = random.Random(len(encoded))
        keep = [rng.random() < 0.6 for _ in encoded]
        stores = []
        for kernel in KERNELS:
            store = kernel.record_store(tables)
            for to_values, po_codes in encoded:
                store.append(to_values, po_codes)
            store.compress(keep)
            stores.append(store)
        assert all(len(store) == sum(keep) for store in stores)
        for to_values, po_codes in encoded:
            _assert_all_match([s.any_dominates(to_values, po_codes) for s in stores])


class TestTDominanceAgreement:
    @given(
        dag=random_dag_strategy(max_values=8),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_weak_t_dominance_matches_reference_checker(self, dag, seed):
        rng = random.Random(seed)
        schema = Schema(
            [TotalOrderAttribute("x"), PartialOrderAttribute("p", dag)]
        )
        from repro.data.dataset import Dataset

        rows = [
            (rng.randint(0, 4), rng.choice(dag.values)) for _ in range(20)
        ]
        dataset = Dataset(schema, rows)
        mapping = TSSMapping(dataset)
        points = mapping.points
        split = max(1, len(points) // 2)
        members, candidates = points[:split], points[split:] or points[:1]
        results = []
        for kernel in KERNELS:
            checker = TDominanceChecker(mapping, kernel=kernel)
            store = checker.make_skyline_store()
            for member in members:
                store.append(member)
            verdicts = [
                checker.store_dominates_point(store, candidate)
                for candidate in candidates
            ]
            results.append(verdicts)
        _assert_all_match(results)
        # All agree with the scalar reference scan as well.
        checker = TDominanceChecker(mapping)
        reference = [
            checker.point_dominated_by_any(members, candidate)
            for candidate in candidates
        ]
        assert results[0] == reference

    @given(
        dag=random_dag_strategy(max_values=7),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_mbb_verdicts_match_reference_checker(self, dag, seed):
        rng = random.Random(seed)
        schema = Schema(
            [TotalOrderAttribute("x"), PartialOrderAttribute("p", dag)]
        )
        from repro.data.dataset import Dataset

        rows = [
            (rng.randint(0, 4), rng.choice(dag.values)) for _ in range(16)
        ]
        dataset = Dataset(schema, rows)
        mapping = TSSMapping(dataset)
        points = mapping.points
        cardinality = len(dag.values)
        boxes = []
        for _ in range(6):
            x = rng.randint(0, 4)
            low_ord = rng.randint(1, cardinality)
            high_ord = rng.randint(low_ord, cardinality)
            boxes.append(
                ((float(x), float(low_ord)), (float(x + 2), float(high_ord)))
            )
        results = []
        for kernel in KERNELS:
            checker = TDominanceChecker(mapping, kernel=kernel)
            store = checker.make_skyline_store()
            for member in points:
                store.append(member)
            results.append(
                [checker.store_dominates_mbb(store, low, high) for low, high in boxes]
            )
        _assert_all_match(results)
        checker = TDominanceChecker(mapping)
        reference = [
            checker.mbb_dominated_by_any(points, low, high) for low, high in boxes
        ]
        assert results[0] == reference


class TestBulkOpsAgreement:
    """The columnar extend / bulk-load / block-query surface agrees too."""

    @given(dataset=mixed_dataset_strategy(max_rows=30))
    @settings(max_examples=25, deadline=None)
    def test_extend_equals_append_loop(self, dataset):
        schema = dataset.schema
        tables = RecordTables.from_schema(schema)
        to_rows = [schema.canonical_to_values(r.values) for r in dataset.records]
        code_rows = [
            tables.encode_po(schema.partial_values(r.values)) for r in dataset.records
        ]
        for kernel in KERNELS:
            looped = kernel.record_store(tables)
            for to_values, po_codes in zip(to_rows, code_rows):
                looped.append(to_values, po_codes)
            bulk = kernel.load_record_store(tables, to_rows, code_rows)
            assert len(bulk) == len(looped) == len(dataset)
            for to_values, po_codes in zip(to_rows, code_rows):
                assert bulk.any_dominates(to_values, po_codes) == looped.any_dominates(
                    to_values, po_codes
                )

    @given(dataset=mixed_dataset_strategy(max_rows=30))
    @settings(max_examples=25, deadline=None)
    def test_columnar_block_queries_match_row_queries(self, dataset):
        schema = dataset.schema
        tables = RecordTables.from_schema(schema)
        encoded = [
            (
                schema.canonical_to_values(r.values),
                tables.encode_po(schema.partial_values(r.values)),
            )
            for r in dataset.records
        ]
        to_rows = [row[0] for row in encoded]
        code_rows = [row[1] for row in encoded]
        split = max(1, len(encoded) // 2)
        results = []
        for kernel in KERNELS:
            store = kernel.load_record_store(tables, to_rows[:split], code_rows[:split])
            results.append(
                (
                    store.block_dominated_columns(to_rows, code_rows),
                    kernel.record_block_dominated_columns(
                        tables, to_rows[:split], code_rows[:split], to_rows, code_rows
                    ),
                )
            )
        _assert_all_match(results)
        # The columnar forms agree with the row-pair forms they shadow.
        store = KERNELS[0].load_record_store(tables, to_rows[:split], code_rows[:split])
        assert results[0][0] == store.block_dominated_mask(encoded)
        assert results[0][1] == KERNELS[0].record_block_dominated_mask(
            tables, encoded[:split], encoded
        )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dims=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_vector_store_bulk_ops_match(self, seed, dims):
        rng = random.Random(seed)
        members = [tuple(rng.randint(0, 4) for _ in range(dims)) for _ in range(12)]
        targets = [tuple(rng.randint(0, 4) for _ in range(dims)) for _ in range(9)]
        masks = []
        for kernel in KERNELS:
            store = kernel.load_vector_store(dims, members)
            assert len(store) == len(members)
            masks.append(store.block_dominated_mask(targets))
        _assert_all_match(masks)
        assert masks[0] == [
            KERNELS[0].load_vector_store(dims, members).any_dominates(t) for t in targets
        ]

    @given(
        dag=random_dag_strategy(max_values=7),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_tdominance_bulk_ops_match(self, dag, seed):
        rng = random.Random(seed)
        encoding = encode_domain(dag)
        tables = TDominanceTables.from_encodings(1, [encoding])
        cardinality = len(dag.values)
        members_to = [(float(rng.randint(0, 4)),) for _ in range(10)]
        members_codes = [(rng.randrange(cardinality),) for _ in range(10)]
        targets_to = [(float(rng.randint(0, 4)),) for _ in range(8)]
        targets_codes = [(rng.randrange(cardinality),) for _ in range(8)]
        masks = []
        for kernel in KERNELS:
            store = kernel.load_tdominance_store(tables, members_to, members_codes)
            assert len(store) == len(members_to)
            masks.append(store.block_weakly_dominated(targets_to, targets_codes))
        _assert_all_match(masks)
        store = KERNELS[0].load_tdominance_store(tables, members_to, members_codes)
        assert masks[0] == [
            store.any_weakly_dominates(to_values, po_codes)
            for to_values, po_codes in zip(targets_to, targets_codes)
        ]


class TestStatelessOpsAgreement:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dims=st.integers(min_value=1, max_value=4),
        rows=st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=40, deadline=None)
    def test_pareto_mask_matches(self, seed, dims, rows):
        rng = random.Random(seed)
        block = [tuple(rng.randint(0, 4) for _ in range(dims)) for _ in range(rows)]
        _assert_all_match([kernel.pareto_mask(block) for kernel in KERNELS])

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rows=st.integers(min_value=1, max_value=120),
        spread=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_pareto_mask_low_dimensional_fast_paths(self, seed, rows, spread):
        """The 1-D/2-D sorted fast paths agree with the reference, including
        heavy duplicate/tie blocks."""
        rng = random.Random(seed)
        for dims in (1, 2):
            block = [
                tuple(rng.randint(0, spread) for _ in range(dims)) for _ in range(rows)
            ]
            _assert_all_match(
                [kernel.pareto_mask(block) for kernel in KERNELS], context=dims
            )

    @given(
        cover_sets=st.lists(_interval_set_strategy(), min_size=0, max_size=8),
        target=_interval_set_strategy(),
    )
    @settings(max_examples=50, deadline=None)
    def test_covers_many_matches(self, cover_sets, target):
        expected = [cover.covers(target) for cover in cover_sets]
        for kernel in KERNELS:
            assert kernel.covers_many(cover_sets, target) == expected, kernel.name


class TestAlgorithmLevelAgreement:
    """End-to-end: whole skyline algorithms agree across backends."""

    @given(dataset=mixed_dataset_strategy(max_rows=25))
    @settings(max_examples=15, deadline=None)
    def test_stss_identical_across_backends(self, dataset):
        from repro.core.stss import stss_skyline

        results = [stss_skyline(dataset, kernel=kernel) for kernel in KERNELS]
        # Identical ids *in identical discovery order*, not just as sets.
        _assert_all_match([result.skyline_ids for result in results])
        # The compiled backend early-exits exactly like the reference, so its
        # dominance-check count can never exceed purepython's.  (The NumPy
        # backend is exempt: it charges whole blocks by design.)
        reference_checks = results[0].stats.dominance_checks
        for kernel, result in zip(KERNELS, results):
            if kernel.name == "jit":
                assert result.stats.dominance_checks <= reference_checks

    @given(dataset=mixed_dataset_strategy(max_rows=25))
    @settings(max_examples=15, deadline=None)
    def test_scan_algorithms_identical_across_backends(self, dataset):
        from repro.skyline.bnl import bnl_skyline
        from repro.skyline.less import less_skyline
        from repro.skyline.sfs import sfs_skyline

        for algorithm in (bnl_skyline, sfs_skyline, less_skyline):
            results = [algorithm(dataset, kernel=kernel) for kernel in KERNELS]
            _assert_all_match(
                [result.skyline_ids for result in results], context=algorithm.__name__
            )
            reference_checks = results[0].stats.dominance_checks
            for kernel, result in zip(KERNELS, results):
                if kernel.name == "jit":
                    assert result.stats.dominance_checks <= reference_checks


def test_tdominance_tables_match_encoding():
    """The t-preference matrix equals pairwise t_prefers_or_equal verdicts."""
    from repro.order.lattice import lattice_domain

    encoding = encode_domain(lattice_domain(3, 1.0, seed=1))
    tables = TDominanceTables.from_encodings(1, [encoding])
    table = tables.attributes[0]
    for i, better in enumerate(table.values):
        for j, worse in enumerate(table.values):
            assert table.pref_or_equal[i][j] == encoding.t_prefers_or_equal(
                better, worse
            )
