"""Integration tests: in-process query service + concurrent blocking clients.

The server runs on a real asyncio event loop in a background thread, bound to
an ephemeral port; clients are the same blocking :class:`ServiceClient` the
CLI uses, fired concurrently from a thread pool.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.stss import stss_skyline
from repro.data.workloads import WorkloadSpec
from repro.engine.batch import BatchQuery, BatchQueryEngine, random_query_preferences
from repro.exceptions import ServiceError
from repro.order.dag import PartialOrderDAG
from repro.service import QueryService, ServiceClient, wait_for_service
from repro.service.protocol import decode_dag, decode_overrides, encode_dag


def _assert_stops_accepting(host, port, timeout: float = 5.0) -> None:
    """The server may answer the shutdown request a beat before the listener
    closes; poll until connections actually fail."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServiceClient(host, port, timeout=1.0) as client:
                client.ping()
        except ServiceError:
            return
        time.sleep(0.1)
    pytest.fail(f"service at {host}:{port} still accepting after shutdown")


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        name="service-test",
        cardinality=400,
        num_total_order=2,
        num_partial_order=1,
        dag_height=4,
        dag_density=0.8,
        to_domain_size=50,
        seed=9,
    )
    return spec.build()


@pytest.fixture()
def running_service(workload):
    """A live service on an ephemeral port; yields (service, host, port)."""
    _, dataset = workload
    service = QueryService(dataset, num_shards=3, workers=0)
    loop = asyncio.new_event_loop()
    address: dict[str, object] = {}
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def main() -> None:
            host, port = await service.start("127.0.0.1", 0)
            address["host"], address["port"] = host, port
            started.set()
            await service.serve_until_shutdown()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "service did not start"
    yield service, address["host"], address["port"]
    try:
        loop.call_soon_threadsafe(service.request_shutdown)
    except RuntimeError:  # loop already closed by an in-test shutdown
        pass
    thread.join(timeout=10)
    assert not thread.is_alive(), "service thread did not shut down"


class TestSingleClient:
    def test_ping_and_stats(self, running_service):
        _, host, port = running_service
        wait_for_service(host, port, timeout=5)
        with ServiceClient(host, port) as client:
            assert client.ping()["pong"] is True
            stats = client.stats()
            assert stats["engine"]["dataset_size"] == 400
            assert stats["engine"]["cache_capacity"] > 0
            assert stats["engine"]["sharding"]["num_shards"] == 3
            kinds = [a["kind"] for a in stats["schema"]["attributes"]]
            assert kinds == ["to", "to", "po"]

    def test_base_query_matches_local_stss(self, running_service, workload):
        _, dataset = workload
        _, host, port = running_service
        reference = sorted(stss_skyline(dataset).skyline_ids)
        with ServiceClient(host, port) as client:
            response = client.query()
            assert response["skyline_ids"] == reference
            assert response["skyline_size"] == len(reference)

    def test_seed_and_explicit_overrides_agree(self, running_service, workload):
        schema, _ = workload
        _, host, port = running_service
        overrides = random_query_preferences(schema, 21)
        with ServiceClient(host, port) as client:
            by_seed = client.query(seed=21)
            explicit = client.query(overrides=overrides)
            assert by_seed["skyline_ids"] == explicit["skyline_ids"]
            assert explicit["from_cache"] is True

    def test_omit_ids(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            response = client.query(omit_ids=True)
            assert "skyline_ids" not in response and response["skyline_size"] > 0

    def test_errors_do_not_kill_the_connection(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            bad = client.request({"op": "query", "overrides": {"nope": {}}})
            assert bad["ok"] is False and "nope" in bad["error"]
            bad = client.request({"op": "frobnicate"})
            assert bad["ok"] is False
            bad = client.request({"op": "query", "seed": 1, "overrides": {}})
            assert bad["ok"] is False
            assert client.ping()["pong"] is True


class TestConcurrentClients:
    def test_shared_cache_across_clients(self, running_service):
        service, host, port = running_service
        hits_before = service.engine.cache_hits
        evaluated_before = service.engine.queries_evaluated

        def one_client(_: int):
            with ServiceClient(host, port) as client:
                return client.query(seed=77)

        with ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(pool.map(one_client, range(6)))

        first = responses[0]["skyline_ids"]
        assert all(response["skyline_ids"] == first for response in responses)
        # The per-topology lock elects exactly one computing client; the
        # other five hit the shared per-topology cache.
        assert service.engine.queries_evaluated == evaluated_before + 1
        assert service.engine.cache_hits == hits_before + 5
        assert sum(1 for r in responses if r["from_cache"]) == 5

    def test_distinct_topologies_interleave_local_phases(self, workload):
        """Two concurrent queries must both be inside their local phase at
        once — deterministic proof that the global engine lock is gone.

        Each query's local phase blocks on a two-party barrier before
        computing: if the service still serialized queries, the first one
        would wait out the barrier's timeout alone and the test would fail.
        The recorded monotonic windows double-check the overlap.
        """
        import time

        _, dataset = workload
        service = QueryService(dataset, num_shards=3, workers=0)
        executor = service.engine.executor
        rendezvous = threading.Barrier(2, timeout=30)
        windows: list[tuple[float, float]] = []
        original = executor.local_phase

        def instrumented(overrides, **kwargs):
            started = time.monotonic()
            # Rendezvous *inside* the timed window: both windows then contain
            # the barrier-release instant, so they provably overlap.
            rendezvous.wait()
            local_ids = original(overrides, **kwargs)
            windows.append((started, time.monotonic()))
            return local_ids

        executor.local_phase = instrumented

        loop = asyncio.new_event_loop()
        address: dict[str, object] = {}
        started_event = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)

            async def main() -> None:
                host, port = await service.start("127.0.0.1", 0)
                address["host"], address["port"] = host, port
                started_event.set()
                await service.serve_until_shutdown()

            loop.run_until_complete(main())
            loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started_event.wait(timeout=10)

        serial = BatchQueryEngine(dataset)
        seeds = [411, 412]  # distinct topologies -> distinct per-topology locks
        expected = {
            seed: sorted(
                serial.run_query(
                    BatchQuery(f"q{seed}", random_query_preferences(dataset.schema, seed))
                ).skyline_ids
            )
            for seed in seeds
        }

        def one_client(seed: int):
            with ServiceClient(address["host"], address["port"]) as client:
                return seed, client.query(seed=seed)

        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                outcomes = list(pool.map(one_client, seeds))
            for seed, response in outcomes:
                assert response["skyline_ids"] == expected[seed]
            assert len(windows) == 2
            (a_start, a_end), (b_start, b_end) = windows
            assert a_start < b_end and b_start < a_end, "local phases did not overlap"
        finally:
            loop.call_soon_threadsafe(service.request_shutdown)
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_latency_accounting(self, running_service):
        service, host, port = running_service
        with ServiceClient(host, port) as client:
            client.query(seed=301)
        stats = service.stats()
        assert stats["queries"] >= 1
        assert stats["query_seconds_total"] > 0
        assert stats["query_seconds_max"] <= stats["query_seconds_total"]


class TestShutdown:
    def test_clean_shutdown_via_protocol(self, workload):
        _, dataset = workload
        service = QueryService(dataset)
        loop = asyncio.new_event_loop()
        address: dict[str, object] = {}
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)

            async def main() -> None:
                host, port = await service.start("127.0.0.1", 0)
                address["host"], address["port"] = host, port
                started.set()
                await service.serve_until_shutdown()

            loop.run_until_complete(main())
            loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        with ServiceClient(address["host"], address["port"]) as client:
            assert client.query(seed=1)["skyline_size"] > 0
            assert client.shutdown()["stopping"] is True
        thread.join(timeout=10)
        assert not thread.is_alive()
        _assert_stops_accepting(address["host"], address["port"])

    def test_shutdown_not_blocked_by_idle_connections(self, running_service):
        # An idle client parked in the server's readline() must not stall
        # serve_until_shutdown (Server.wait_closed waits for handlers on
        # Python >= 3.12); the server closes lingering connections itself.
        _, host, port = running_service
        idle = ServiceClient(host, port)
        idle.ping()
        try:
            with ServiceClient(host, port) as client:
                assert client.shutdown()["stopping"] is True
            _assert_stops_accepting(host, port)
        finally:
            idle.close()


class TestProtocol:
    def test_dag_round_trip(self):
        dag = PartialOrderDAG(["a", "b", "c"], [("a", "b"), ("b", "c")])
        decoded = decode_dag(encode_dag(dag))
        assert decoded.values == dag.values
        assert sorted(decoded.edges) == sorted(dag.edges)

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            {"values": []},
            {"values": "abc"},
            {"values": ["a"], "edges": "x"},
            {"values": ["a", "b"], "edges": [["a"]]},
            {"values": ["a", "b"], "edges": [["a", "c"]]},
            {"values": ["a", "b"], "edges": [["a", "b"], ["b", "a"]]},
        ],
    )
    def test_malformed_dags_rejected(self, payload):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            decode_dag(payload)

    def test_overrides_must_keep_domain(self, workload):
        schema, _ = workload
        attribute = schema.partial_order_attributes[0]
        from repro.exceptions import QueryError

        shrunk = {"values": list(attribute.domain)[:-1], "edges": []}
        with pytest.raises(QueryError):
            decode_overrides({attribute.name: shrunk}, schema)
