"""Unit tests for the shared result/stats types."""

import pytest

from repro.exceptions import QueryError
from repro.index.pager import DiskSimulator
from repro.skyline.base import ProgressEvent, RunClock, SkylineResult, SkylineStats


class TestSkylineStats:
    def test_total_time_combines_cpu_and_io(self):
        stats = SkylineStats(cpu_seconds=1.0, io_reads=10, io_writes=10, io_cost_seconds=0.005)
        assert stats.io_seconds == pytest.approx(0.1)
        assert stats.total_seconds == pytest.approx(1.1)
        assert stats.total_ios == 20

    def test_as_dict_contains_all_counters(self):
        stats = SkylineStats(dominance_checks=5, points_examined=3)
        rendered = stats.as_dict()
        assert rendered["dominance_checks"] == 5.0
        assert "total_seconds" in rendered


class TestProgressEvent:
    def test_total_seconds_applies_io_cost(self):
        event = ProgressEvent(results_so_far=1, cpu_seconds=0.5, io_reads=10, dominance_checks=2)
        assert event.total_seconds(0.01) == pytest.approx(0.6)


class TestSkylineResult:
    def make_result(self):
        stats = SkylineStats(cpu_seconds=1.0, io_cost_seconds=0.0)
        progress = [
            ProgressEvent(results_so_far=i + 1, cpu_seconds=float(i + 1), io_reads=0, dominance_checks=0)
            for i in range(4)
        ]
        return SkylineResult(skyline_ids=[5, 7, 9, 11], stats=stats, progress=progress)

    def test_len_and_set(self):
        result = self.make_result()
        assert len(result) == 4
        assert result.skyline_set == frozenset({5, 7, 9, 11})

    def test_time_to_fraction(self):
        result = self.make_result()
        assert result.time_to_fraction(0.0) == 0.0
        assert result.time_to_fraction(0.25) == pytest.approx(1.0)
        assert result.time_to_fraction(0.5) == pytest.approx(2.0)
        assert result.time_to_fraction(1.0) == pytest.approx(4.0)

    def test_time_to_fraction_validates_input(self):
        with pytest.raises(QueryError):
            self.make_result().time_to_fraction(1.5)

    def test_time_to_fraction_without_progress(self):
        result = SkylineResult(skyline_ids=[], stats=SkylineStats())
        assert result.time_to_fraction(0.5) == 0.0


class TestRunClock:
    def test_records_progress_and_finishes(self):
        stats = SkylineStats()
        clock = RunClock(stats)
        clock.record_result()
        clock.record_result()
        clock.finish()
        assert len(clock.progress) == 2
        assert clock.progress[0].results_so_far == 1
        assert stats.cpu_seconds >= 0.0

    def test_tracks_io_delta_from_disk(self):
        disk = DiskSimulator(io_cost_seconds=0.001)
        disk.read(1)  # happens before the run starts: must be excluded
        stats = SkylineStats()
        clock = RunClock(stats, disk)
        disk.read(2)
        disk.read(3)
        clock.record_result()
        clock.finish()
        assert stats.io_reads == 2
        assert stats.io_cost_seconds == 0.001
        assert clock.progress[0].io_reads == 2
