"""Unit tests for the TO skyline algorithms (brute force, BNL, SFS, BBS)."""

import pytest

from repro.data.dataset import Dataset
from repro.data.generator import generate_dataset
from repro.data.schema import Schema, TotalOrderAttribute
from repro.exceptions import SchemaError
from repro.index.pager import DiskSimulator
from repro.skyline.bbs import bbs_skyline
from repro.skyline.bnl import bnl_skyline
from repro.skyline.bruteforce import brute_force_skyline, brute_force_skyline_records
from repro.skyline.sfs import monotone_sort_key, sfs_skyline


@pytest.fixture
def to_schema():
    return Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])


@pytest.fixture
def to_dataset(to_schema):
    return generate_dataset(to_schema, 300, distribution="anticorrelated", to_domain_size=60, seed=3)


@pytest.fixture
def truth(to_dataset):
    return frozenset(brute_force_skyline(to_dataset).skyline_ids)


class TestBruteForce:
    def test_paper_example_stops_price_skyline(self, flight_dataset):
        """Figure 1(b): with all airlines equal, the skyline is p1, p3, p6, p7, p9."""
        to_schema = Schema([TotalOrderAttribute("price"), TotalOrderAttribute("stops")])
        data = Dataset(to_schema, [record.values[:2] for record in flight_dataset])
        skyline = frozenset(brute_force_skyline(data).skyline_ids)
        assert skyline == {0, 2, 5, 6, 8}

    def test_records_variant_matches(self, to_dataset):
        by_id = frozenset(brute_force_skyline(to_dataset).skyline_ids)
        by_record = frozenset(record.id for record in brute_force_skyline_records(to_dataset))
        assert by_id == by_record

    def test_flight_skyline_with_airlines(self, flight_dataset):
        """Table I, first partial order: skyline = {p1, p5, p6, p9, p10}."""
        skyline = frozenset(brute_force_skyline(flight_dataset).skyline_ids)
        assert skyline == {0, 4, 5, 8, 9}

    def test_duplicates_are_both_in_the_skyline(self, to_schema):
        data = Dataset(to_schema, [(1, 1), (1, 1), (2, 2)])
        skyline = frozenset(brute_force_skyline(data).skyline_ids)
        assert skyline == {0, 1}

    def test_single_record(self, to_schema):
        data = Dataset(to_schema, [(5, 5)])
        assert brute_force_skyline(data).skyline_ids == [0]


class TestBNL:
    def test_matches_brute_force(self, to_dataset, truth):
        assert frozenset(bnl_skyline(to_dataset).skyline_ids) == truth

    @pytest.mark.parametrize("window", [1, 3, 10, 50])
    def test_window_size_does_not_change_the_result(self, to_dataset, truth, window):
        assert frozenset(bnl_skyline(to_dataset, window_size=window).skyline_ids) == truth

    def test_works_on_po_schema(self, flight_dataset):
        assert frozenset(bnl_skyline(flight_dataset).skyline_ids) == {0, 4, 5, 8, 9}

    def test_counts_work(self, to_dataset):
        result = bnl_skyline(to_dataset)
        assert result.stats.points_examined >= len(to_dataset)
        assert result.stats.dominance_checks > 0


class TestSFS:
    def test_matches_brute_force(self, to_dataset, truth):
        assert frozenset(sfs_skyline(to_dataset).skyline_ids) == truth

    def test_works_on_po_schema(self, flight_dataset):
        assert frozenset(sfs_skyline(flight_dataset).skyline_ids) == {0, 4, 5, 8, 9}

    def test_sort_key_is_monotone_wrt_dominance(self, flight_dataset, flight_schema):
        from repro.skyline.dominance import dominates_records

        key = monotone_sort_key(flight_schema)
        for a in flight_dataset:
            for b in flight_dataset:
                if dominates_records(flight_schema, a, b):
                    assert key(a) < key(b)

    def test_is_optimally_progressive(self, to_dataset, truth):
        """Every output point is final: progress events equal the skyline size."""
        result = sfs_skyline(to_dataset)
        assert len(result.progress) == len(truth)

    def test_candidate_list_never_holds_non_skyline_points(self, to_dataset, truth):
        result = sfs_skyline(to_dataset)
        assert frozenset(result.skyline_ids) <= truth


class TestBBS:
    def test_matches_brute_force(self, to_dataset, truth):
        assert frozenset(bbs_skyline(to_dataset).skyline_ids) == truth

    def test_rejects_po_schemas(self, flight_dataset):
        with pytest.raises(SchemaError):
            bbs_skyline(flight_dataset)

    def test_results_come_out_in_mindist_order(self, to_dataset):
        pytest.importorskip("numpy")
        result = bbs_skyline(to_dataset)
        matrix = to_dataset.to_numeric_matrix()
        mindists = [float(matrix[i].sum()) for i in result.skyline_ids]
        assert mindists == sorted(mindists)

    def test_io_accounting_prunes_subtrees(self, to_dataset):
        disk = DiskSimulator()
        result = bbs_skyline(to_dataset, disk=disk, max_entries=8)
        # BBS must not read every node of the tree (it prunes dominated MBBs).
        from repro.index.rtree import RTree

        full_tree = RTree.bulk_load(
            2,
            ((to_dataset.schema.canonical_to_values(r.values), r.id) for r in to_dataset),
            max_entries=8,
        )
        assert result.stats.io_reads < full_tree.node_count()
        assert result.stats.io_reads == result.stats.nodes_expanded

    def test_small_fanout_still_correct(self, to_dataset, truth):
        assert frozenset(bbs_skyline(to_dataset, max_entries=4).skyline_ids) == truth

    def test_progressiveness_log(self, to_dataset, truth):
        result = bbs_skyline(to_dataset)
        assert len(result.progress) == len(truth)
        times = [event.cpu_seconds for event in result.progress]
        assert times == sorted(times)
