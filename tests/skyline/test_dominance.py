"""Unit tests for dominance relations."""


from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.skyline.dominance import (
    dominates_records,
    dominates_vectors,
    incomparable_records,
    record_dominance_function,
    weakly_dominates_vectors,
)


class TestVectorDominance:
    def test_strict_dominance(self):
        assert dominates_vectors((1, 2), (2, 3))
        assert dominates_vectors((1, 2), (1, 3))
        assert not dominates_vectors((1, 2), (1, 2))
        assert not dominates_vectors((1, 4), (2, 3))
        assert not dominates_vectors((2, 3), (1, 2))

    def test_weak_dominance(self):
        assert weakly_dominates_vectors((1, 2), (1, 2))
        assert weakly_dominates_vectors((1, 2), (2, 3))
        assert not weakly_dominates_vectors((2, 2), (1, 3))

    def test_dominance_is_antisymmetric(self):
        assert not (dominates_vectors((1, 2), (2, 1)) or dominates_vectors((2, 1), (1, 2)))


class TestRecordDominance:
    def test_paper_example_to_only(self, flight_dataset, flight_schema):
        """Figure 1(b): p8 is dominated by p1 and p3 on (price, stops) alone."""
        to_schema = Schema(
            [TotalOrderAttribute("price"), TotalOrderAttribute("stops")]
        )
        data = Dataset(to_schema, [row.values[:2] for row in flight_dataset])
        assert dominates_records(to_schema, data[0], data[7])   # p1 dominates p8
        assert dominates_records(to_schema, data[2], data[7])   # p3 dominates p8
        assert dominates_records(to_schema, data[5], data[3])   # p6 dominates p4
        assert not dominates_records(to_schema, data[7], data[0])

    def test_paper_example_with_airline_preferences(self, flight_dataset, flight_schema):
        """With the airline partial order, p1 dominates p3 (same price/stops, a < b)."""
        assert dominates_records(flight_schema, flight_dataset[0], flight_dataset[2])
        assert not dominates_records(flight_schema, flight_dataset[2], flight_dataset[0])
        # p6 dominates p7 (same TO values, b preferred over d).
        assert dominates_records(flight_schema, flight_dataset[5], flight_dataset[6])
        # p5 is no longer dominated once airlines matter (p4's airline b is incomparable to a).
        assert not dominates_records(flight_schema, flight_dataset[3], flight_dataset[4])

    def test_incomparable_po_values_block_dominance(self, flight_schema, flight_dataset):
        # p4 (airline b) vs p5 (airline a): neither dominates.
        assert incomparable_records(flight_schema, flight_dataset[3], flight_dataset[4])

    def test_identical_records_do_not_dominate(self, flight_schema):
        data = Dataset(flight_schema, [(100, 1, "a"), (100, 1, "a")])
        assert not dominates_records(flight_schema, data[0], data[1])
        assert not dominates_records(flight_schema, data[1], data[0])

    def test_max_attributes_are_handled(self, airline_dag):
        schema = Schema(
            [TotalOrderAttribute("rating", best="max"), PartialOrderAttribute("airline", airline_dag)]
        )
        data = Dataset(schema, [(5, "a"), (3, "a"), (5, "b")])
        assert dominates_records(schema, data[0], data[1])
        assert dominates_records(schema, data[0], data[2])
        assert not dominates_records(schema, data[1], data[2])

    def test_dominance_function_binding(self, flight_schema, flight_dataset):
        dominates = record_dominance_function(flight_schema)
        assert dominates(flight_dataset[0], flight_dataset[2])

    def test_transitivity_on_flight_data(self, flight_schema, flight_dataset):
        records = flight_dataset.records
        for a in records:
            for b in records:
                for c in records:
                    if dominates_records(flight_schema, a, b) and dominates_records(flight_schema, b, c):
                        assert dominates_records(flight_schema, a, c)
