"""Unit tests for the LESS and SaLSa skyline algorithms."""

import pytest

from repro.data.dataset import Dataset
from repro.data.generator import generate_dataset
from repro.data.schema import Schema, TotalOrderAttribute
from repro.exceptions import SchemaError
from repro.skyline.bruteforce import brute_force_skyline
from repro.skyline.less import less_skyline
from repro.skyline.salsa import salsa_skyline
from repro.skyline.sfs import sfs_skyline


@pytest.fixture(scope="module")
def to_dataset():
    schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y"), TotalOrderAttribute("z")])
    return generate_dataset(schema, 400, distribution="anticorrelated", to_domain_size=80, seed=9)


@pytest.fixture(scope="module")
def to_truth(to_dataset):
    return frozenset(brute_force_skyline(to_dataset).skyline_ids)


class TestLESS:
    def test_matches_brute_force_on_to_data(self, to_dataset, to_truth):
        assert frozenset(less_skyline(to_dataset).skyline_ids) == to_truth

    def test_matches_brute_force_on_po_data(self, small_anticorrelated_workload):
        _, dataset = small_anticorrelated_workload
        truth = frozenset(brute_force_skyline(dataset).skyline_ids)
        assert frozenset(less_skyline(dataset).skyline_ids) == truth

    def test_flight_example(self, flight_dataset):
        assert frozenset(less_skyline(flight_dataset).skyline_ids) == {0, 4, 5, 8, 9}

    @pytest.mark.parametrize("window", [0, 1, 4, 64])
    def test_filter_window_does_not_change_the_result(self, to_dataset, to_truth, window):
        assert frozenset(less_skyline(to_dataset, filter_window=window).skyline_ids) == to_truth

    def test_elimination_reduces_examined_survivors(self, to_dataset):
        """The elimination filter performs extra checks but never changes the skyline."""
        with_filter = less_skyline(to_dataset, filter_window=16)
        without_filter = less_skyline(to_dataset, filter_window=0)
        assert frozenset(with_filter.skyline_ids) == frozenset(without_filter.skyline_ids)

    def test_is_optimally_progressive(self, to_dataset, to_truth):
        result = less_skyline(to_dataset)
        assert len(result.progress) == len(to_truth)

    def test_duplicates_are_reported(self):
        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        dataset = Dataset(schema, [(1, 1), (1, 1), (3, 3)])
        assert frozenset(less_skyline(dataset).skyline_ids) == {0, 1}

    def test_agrees_with_sfs_output_order(self, to_dataset):
        """LESS and SFS both emit results in monotone-score order."""
        assert less_skyline(to_dataset).skyline_ids == sfs_skyline(to_dataset).skyline_ids


class TestSaLSa:
    def test_matches_brute_force(self, to_dataset, to_truth):
        assert frozenset(salsa_skyline(to_dataset).skyline_ids) == to_truth

    def test_rejects_po_schemas(self, flight_dataset):
        with pytest.raises(SchemaError):
            salsa_skyline(flight_dataset)

    def test_early_termination_skips_points(self, to_dataset):
        result = salsa_skyline(to_dataset)
        assert result.stats.points_examined < len(to_dataset)

    def test_correlated_data_terminates_very_early(self):
        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        dataset = generate_dataset(schema, 500, distribution="correlated", seed=4)
        truth = frozenset(brute_force_skyline(dataset).skyline_ids)
        result = salsa_skyline(dataset)
        assert frozenset(result.skyline_ids) == truth
        assert result.stats.points_examined < len(dataset) / 2

    def test_duplicates_of_the_stop_point_are_kept(self):
        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        dataset = Dataset(schema, [(2, 2), (2, 2), (1, 5), (5, 1), (6, 6)])
        truth = frozenset(brute_force_skyline(dataset).skyline_ids)
        assert frozenset(salsa_skyline(dataset).skyline_ids) == truth

    def test_max_direction_attributes(self):
        schema = Schema([TotalOrderAttribute("rating", best="max"), TotalOrderAttribute("price")])
        dataset = Dataset(schema, [(9, 100), (8, 50), (9, 120), (2, 40)])
        truth = frozenset(brute_force_skyline(dataset).skyline_ids)
        assert frozenset(salsa_skyline(dataset).skyline_ids) == truth

    def test_single_record(self):
        schema = Schema([TotalOrderAttribute("x")])
        dataset = Dataset(schema, [(3,)])
        assert salsa_skyline(dataset).skyline_ids == [0]


class TestFrameworkRegistration:
    def test_less_and_salsa_available_through_compute_skyline(self, to_dataset, to_truth):
        from repro.core.framework import compute_skyline

        assert frozenset(compute_skyline(to_dataset, algorithm="less").skyline_ids) == to_truth
        assert frozenset(compute_skyline(to_dataset, algorithm="salsa").skyline_ids) == to_truth
