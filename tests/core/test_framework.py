"""Unit tests for the high-level facade."""

import pytest

from repro.core.framework import ALGORITHMS, compute_skyline, skyline_records
from repro.data.dataset import Dataset
from repro.data.schema import Schema, TotalOrderAttribute
from repro.exceptions import ReproError
from repro.skyline.bruteforce import brute_force_skyline


class TestComputeSkyline:
    def test_registry_contains_all_documented_algorithms(self):
        for name in ("auto", "stss", "tss", "bbs", "bnl", "sfs", "bruteforce", "bbs+", "sdc", "sdc+"):
            assert name in ALGORITHMS

    def test_unknown_algorithm_raises(self, flight_dataset):
        with pytest.raises(ReproError):
            compute_skyline(flight_dataset, algorithm="quantum")

    def test_auto_uses_stss_for_po_schemas(self, flight_dataset):
        result = compute_skyline(flight_dataset)
        assert frozenset(result.skyline_ids) == {0, 4, 5, 8, 9}

    def test_auto_uses_bbs_for_to_only_schemas(self):
        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        dataset = Dataset(schema, [(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)])
        result = compute_skyline(dataset)
        assert frozenset(result.skyline_ids) == {0, 1, 2}

    @pytest.mark.parametrize("algorithm", ["stss", "bnl", "sfs", "bruteforce", "bbs+", "sdc", "sdc+"])
    def test_every_algorithm_agrees_on_the_flight_example(self, flight_dataset, algorithm):
        result = compute_skyline(flight_dataset, algorithm=algorithm)
        assert frozenset(result.skyline_ids) == {0, 4, 5, 8, 9}

    def test_algorithm_name_is_case_insensitive(self, flight_dataset):
        result = compute_skyline(flight_dataset, algorithm="STSS")
        assert frozenset(result.skyline_ids) == {0, 4, 5, 8, 9}

    def test_options_are_forwarded(self, flight_dataset):
        result = compute_skyline(flight_dataset, algorithm="stss", use_virtual_rtree=False)
        assert frozenset(result.skyline_ids) == {0, 4, 5, 8, 9}


class TestSkylineRecords:
    def test_returns_record_objects(self, flight_dataset, flight_schema):
        records = skyline_records(flight_dataset)
        assert {record.id for record in records} == {0, 4, 5, 8, 9}
        assert all(record.value(flight_schema, "price") > 0 for record in records)

    def test_matches_brute_force_on_small_workload(self, small_workload):
        _, dataset = small_workload
        truth = frozenset(brute_force_skyline(dataset).skyline_ids)
        records = skyline_records(dataset)
        assert {record.id for record in records} == truth
