"""Unit tests for the exact t-dominance checker."""

import pytest

from repro.core.mapping import TSSMapping
from repro.core.tdominance import TDominanceChecker
from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.skyline.base import SkylineStats
from repro.skyline.dominance import dominates_records


@pytest.fixture
def paper_mapping(example_dag):
    """The example data set of Figure 3(a): one TO attribute, the a..i PO domain."""
    schema = Schema([TotalOrderAttribute("A1"), PartialOrderAttribute("A2", example_dag)])
    rows = [
        (2, "c"), (3, "d"), (1, "h"), (8, "a"), (6, "e"), (7, "c"), (9, "b"),
        (4, "i"), (2, "f"), (3, "g"), (5, "g"), (7, "f"), (9, "h"),
    ]
    dataset = Dataset(schema, rows)
    return dataset, TSSMapping(dataset)


class TestPointDominance:
    def test_matches_ground_truth_on_paper_data(self, paper_mapping):
        dataset, mapping = paper_mapping
        checker = TDominanceChecker(mapping)
        for p in mapping.points:
            for q in mapping.points:
                if p is q:
                    continue
                expected = dominates_records(
                    dataset.schema, dataset[p.record_ids[0]], dataset[q.record_ids[0]]
                )
                assert checker.dominates_point(p, q) == expected

    def test_weak_equals_strict_for_distinct_points(self, paper_mapping):
        _, mapping = paper_mapping
        checker = TDominanceChecker(mapping)
        for p in mapping.points:
            for q in mapping.points:
                if p is not q:
                    assert checker.weakly_dominates_point(p, q) == checker.dominates_point(p, q)

    def test_point_dominated_by_any(self, paper_mapping):
        _, mapping = paper_mapping
        checker = TDominanceChecker(mapping)
        stats = SkylineStats()
        p1 = mapping.points[0]   # (2, c)
        p3 = mapping.points[2]   # (1, h) — incomparable PO value with c? c reaches h, but A1 is worse
        p6 = mapping.points[5]   # (7, c) — dominated by p1
        assert checker.point_dominated_by_any([p1, p3], p6, counter=stats)
        assert stats.dominance_checks >= 1
        assert not checker.point_dominated_by_any([], p6)

    def test_t_prefers_or_equal_passthrough(self, paper_mapping, example_dag):
        _, mapping = paper_mapping
        checker = TDominanceChecker(mapping)
        for x in example_dag.values:
            for y in example_dag.values:
                assert checker.t_prefers_or_equal(0, x, y) == (
                    x == y or example_dag.is_preferred(x, y)
                )


class TestMBBDominance:
    def test_paper_step7_n4_is_dominated_by_p1(self, paper_mapping, example_encoding):
        """Section IV-A: p1=(2, c) t-dominates MBB N4 spanning f..g with min A1 = 2."""
        _, mapping = paper_mapping
        checker = TDominanceChecker(mapping)
        p1 = next(p for p in mapping.points if p.po_values == ("c",) and p.to_values == (2.0,))
        ordinal_f = example_encoding.ordinal("f")
        ordinal_g = example_encoding.ordinal("g")
        low = (2.0, float(min(ordinal_f, ordinal_g)))
        high = (3.0, float(max(ordinal_f, ordinal_g)))
        assert checker.dominates_mbb(p1, low, high)

    def test_paper_step5_n3_not_dominated_by_p1(self, paper_mapping, example_encoding):
        """Section IV-A: N3 spans values a..h, so p1 cannot t-dominate it."""
        _, mapping = paper_mapping
        checker = TDominanceChecker(mapping)
        p1 = next(p for p in mapping.points if p.po_values == ("c",) and p.to_values == (2.0,))
        low = (3.0, 1.0)
        high = (9.0, float(example_encoding.ordinal("h")))
        assert not checker.dominates_mbb(p1, low, high)

    def test_mbb_dominance_implies_every_value_dominated(self, paper_mapping, example_encoding):
        _, mapping = paper_mapping
        checker = TDominanceChecker(mapping)
        for p in mapping.points:
            for low_ord in range(1, 10):
                for high_ord in range(low_ord, 10):
                    low = (p.to_values[0], float(low_ord))
                    high = (p.to_values[0] + 1.0, float(high_ord))
                    if checker.dominates_mbb(p, low, high):
                        for ordinal in range(low_ord, high_ord + 1):
                            value = example_encoding.value_at(ordinal)
                            assert example_encoding.t_prefers_or_equal(p.po_values[0], value)

    def test_dyadic_and_plain_range_sets_agree(self, paper_mapping):
        _, mapping = paper_mapping
        with_cache = TDominanceChecker(mapping, use_dyadic_cache=True)
        without_cache = TDominanceChecker(mapping, use_dyadic_cache=False)
        for low in range(1, 10):
            for high in range(low, 10):
                assert with_cache.range_interval_set(0, low, high) == without_cache.range_interval_set(0, low, high)

    def test_mbb_dominated_by_any(self, paper_mapping, example_encoding):
        _, mapping = paper_mapping
        checker = TDominanceChecker(mapping)
        stats = SkylineStats()
        p1 = next(p for p in mapping.points if p.po_values == ("c",) and p.to_values == (2.0,))
        ordinal_f = example_encoding.ordinal("f")
        low = (5.0, float(ordinal_f))
        high = (9.0, float(ordinal_f))
        assert checker.mbb_dominated_by_any([p1], low, high, counter=stats)
        assert not checker.mbb_dominated_by_any([], low, high)
