"""End-to-end checks against the paper's worked examples.

These tests pin the library's behaviour to the concrete examples in the
paper: the flight tickets of Figure 1 / Table I, the 9-value PO domain of
Figure 2, the sTSS run of Figure 3 / Table II and the dynamic queries of
Figures 5 and 6.
"""

import pytest

from repro.core.framework import skyline_records
from repro.core.stss import stss_skyline
from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.dynamic.dtss import dtss_skyline
from repro.order.builders import (
    airline_preference_dag_second,
    paper_example_dag,
)
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import encode_domain
from repro.skyline.bruteforce import brute_force_skyline


TICKET_NAMES = [f"p{i}" for i in range(1, 11)]


def ticket_names(dataset, ids):
    return sorted((TICKET_NAMES[i] for i in ids), key=lambda name: int(name[1:]))


class TestFlightExample:
    def test_to_only_skyline_matches_figure_1b(self, flight_dataset):
        """With airlines ignored, the skyline is p1, p3, p6, p7, p9."""
        to_schema = Schema([TotalOrderAttribute("price"), TotalOrderAttribute("stops")])
        projected = Dataset(to_schema, [record.values[:2] for record in flight_dataset])
        result = brute_force_skyline(projected)
        assert ticket_names(projected, result.skyline_ids) == ["p1", "p3", "p6", "p7", "p9"]

    def test_first_partial_order_matches_table_1(self, flight_dataset):
        """Table I row 1: skyline = p1, p5, p6, p9, p10."""
        result = stss_skyline(flight_dataset)
        assert ticket_names(flight_dataset, result.skyline_ids) == ["p1", "p5", "p6", "p9", "p10"]

    def test_second_partial_order_matches_table_1(self, flight_dataset):
        """Table I row 2: skyline = p3, p6, p7, p8, p9, p10."""
        schema = flight_dataset.schema.replace_partial_order(
            {"airline": airline_preference_dag_second()}
        )
        dataset = flight_dataset.with_schema(schema)
        result = stss_skyline(dataset)
        assert ticket_names(dataset, result.skyline_ids) == ["p3", "p6", "p7", "p8", "p9", "p10"]

    def test_second_partial_order_as_dynamic_query(self, flight_dataset):
        """The same Table I row 2 result obtained through a dTSS dynamic query."""
        result = dtss_skyline(flight_dataset, {"airline": airline_preference_dag_second()})
        assert ticket_names(flight_dataset, result.skyline_ids) == ["p3", "p6", "p7", "p8", "p9", "p10"]


class TestFigure2Domain:
    def test_exactness_on_the_nine_value_domain(self):
        dag = paper_example_dag()
        encoding = encode_domain(dag)
        for x in dag.values:
            for y in dag.values:
                if x != y:
                    assert encoding.t_prefers(x, y) == dag.is_preferred(x, y)

    def test_f_is_t_preferred_over_h(self):
        """Section III-B: h's interval coincides with one of f's, so f <_t h."""
        dag = paper_example_dag()
        encoding = encode_domain(dag)
        assert encoding.t_prefers("f", "h")
        assert not encoding.t_prefers("h", "f")

    def test_c_and_d_are_incomparable_despite_adjacent_ordinals(self):
        """Section III-B: the topological sort alone would wrongly suggest c < d."""
        dag = paper_example_dag()
        encoding = encode_domain(dag)
        assert abs(encoding.ordinal("c") - encoding.ordinal("d")) >= 1
        assert not encoding.t_prefers("c", "d")
        assert not encoding.t_prefers("d", "c")


class TestFigure3Run:
    @pytest.fixture
    def figure3_dataset(self):
        schema = Schema(
            [TotalOrderAttribute("A1"), PartialOrderAttribute("A2", paper_example_dag())]
        )
        rows = [
            (2, "c"), (3, "d"), (1, "h"), (8, "a"), (6, "e"), (7, "c"), (9, "b"),
            (4, "i"), (2, "f"), (3, "g"), (5, "g"), (7, "f"), (9, "h"),
        ]
        return Dataset(schema, rows)

    def test_final_skyline_is_p1_to_p5(self, figure3_dataset):
        """Section IV-A: the final skyline points are p1, p2, p3, p4, p5."""
        result = stss_skyline(figure3_dataset)
        assert frozenset(result.skyline_ids) == {0, 1, 2, 3, 4}

    def test_agrees_with_brute_force(self, figure3_dataset):
        truth = frozenset(brute_force_skyline(figure3_dataset).skyline_ids)
        assert frozenset(stss_skyline(figure3_dataset).skyline_ids) == truth

    def test_discovery_order_follows_the_table_ii_trace(self, figure3_dataset):
        """Table II: p1 (mindist 5), then p2 (7), then p3/p4 (tied at 9), then p5 (11).

        The relative order of p3 and p4 depends on how the R-tree breaks the
        mindist tie, so only the untied positions are pinned.
        """
        result = stss_skyline(figure3_dataset, max_entries=4)
        order = list(result.skyline_ids)
        assert set(order) == {0, 1, 2, 3, 4}
        assert order[0] == 0          # p1 first
        assert order[1] == 1          # p2 second
        assert set(order[2:4]) == {2, 3}  # p3 and p4 share mindist 9
        assert order[4] == 4          # p5 last

    def test_discovery_order_is_non_decreasing_in_mindist(self, figure3_dataset):
        encoding = encode_domain(paper_example_dag())
        result = stss_skyline(figure3_dataset, max_entries=4)
        mindists = [
            figure3_dataset[i].values[0] + encoding.ordinal(figure3_dataset[i].values[1])
            for i in result.skyline_ids
        ]
        assert mindists == sorted(mindists)


class TestFigure5And6Dynamic:
    @pytest.fixture
    def dynamic_dataset(self):
        """The 10-point data set of Figure 5(a) with PO attribute A3 over {a, b, c}."""
        dag = PartialOrderDAG(["a", "b", "c"], [])  # data-side DAG is irrelevant to dTSS
        schema = Schema(
            [
                TotalOrderAttribute("A1"),
                TotalOrderAttribute("A2"),
                PartialOrderAttribute("A3", dag),
            ]
        )
        rows = [
            (1, 2, "a"), (3, 1, "a"), (3, 4, "a"), (4, 5, "a"), (2, 2, "b"),
            (1, 5, "b"), (2, 5, "c"), (3, 4, "c"), (4, 4, "c"), (5, 2, "c"),
        ]
        return Dataset(schema, rows)

    def test_first_query_matches_figure_5(self, dynamic_dataset):
        """Query: b < c (no other preference). Skyline: p1, p2, p5, p6."""
        query = PartialOrderDAG(["a", "b", "c"], [("b", "c")])
        result = dtss_skyline(dynamic_dataset, {"A3": query})
        assert frozenset(result.skyline_ids) == {0, 1, 4, 5}

    def test_second_query_matches_figure_6(self, dynamic_dataset):
        """Query: a < b and c < b. Skyline: p7, p8, p10, p1, p2."""
        query = PartialOrderDAG(["a", "b", "c"], [("a", "b"), ("c", "b")])
        result = dtss_skyline(dynamic_dataset, {"A3": query})
        assert frozenset(result.skyline_ids) == {6, 7, 9, 0, 1}

    def test_dynamic_results_match_static_recomputation(self, dynamic_dataset):
        for edges in ([("b", "c")], [("a", "b"), ("c", "b")], []):
            query = PartialOrderDAG(["a", "b", "c"], edges)
            dynamic_result = dtss_skyline(dynamic_dataset, {"A3": query})
            static_schema = dynamic_dataset.schema.replace_partial_order({"A3": query})
            static_dataset = dynamic_dataset.with_schema(static_schema)
            truth = frozenset(brute_force_skyline(static_dataset).skyline_ids)
            assert frozenset(dynamic_result.skyline_ids) == truth


class TestQuickstartDocstring:
    def test_package_docstring_example(self):
        airlines = PartialOrderDAG("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        schema = Schema(
            [
                TotalOrderAttribute("price"),
                TotalOrderAttribute("stops"),
                PartialOrderAttribute("airline", airlines),
            ]
        )
        tickets = Dataset(
            schema, [(1800, 0, "a"), (1400, 1, "a"), (1000, 1, "b"), (500, 2, "d")]
        )
        prices = sorted(r.value(schema, "price") for r in skyline_records(tickets))
        assert prices == [500, 1000, 1400, 1800]
