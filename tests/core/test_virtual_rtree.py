"""Unit tests for the main-memory virtual-point R-tree."""

import pytest

from repro.core.mapping import TSSMapping
from repro.core.tdominance import TDominanceChecker
from repro.core.virtual_rtree import VirtualPointIndex
from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute


@pytest.fixture
def paper_setup(example_dag):
    schema = Schema([TotalOrderAttribute("A1"), PartialOrderAttribute("A2", example_dag)])
    rows = [
        (2, "c"), (3, "d"), (1, "h"), (8, "a"), (6, "e"), (7, "c"), (9, "b"),
        (4, "i"), (2, "f"), (3, "g"), (5, "g"), (7, "f"), (9, "h"),
    ]
    dataset = Dataset(schema, rows)
    mapping = TSSMapping(dataset)
    encoding = mapping.encodings[0]
    return dataset, mapping, encoding


class TestInsertion:
    def test_virtual_point_count_matches_interval_count(self, paper_setup):
        _, mapping, encoding = paper_setup
        index = VirtualPointIndex(1, [encoding])
        point = next(p for p in mapping.points if p.po_values == ("e",))
        inserted = index.insert_mapped_point(point)
        assert inserted == len(encoding.interval_set("e"))
        assert index.num_skyline_points == 1
        assert index.num_virtual_points == inserted
        assert len(index) == inserted

    def test_multiple_po_attributes_build_the_cartesian_product(self, example_dag):
        schema = Schema(
            [
                TotalOrderAttribute("x"),
                PartialOrderAttribute("p", example_dag),
                PartialOrderAttribute("q", example_dag),
            ]
        )
        dataset = Dataset(schema, [(1, "e", "e")])
        mapping = TSSMapping(dataset)
        index = VirtualPointIndex(1, mapping.encodings)
        inserted = index.insert_mapped_point(mapping.points[0])
        per_attr = len(mapping.encodings[0].interval_set("e"))
        assert inserted == per_attr * per_attr


class TestPointQueries:
    def test_agrees_with_checker_on_paper_data(self, paper_setup):
        dataset, mapping, encoding = paper_setup
        checker = TDominanceChecker(mapping)
        # Insert a few skyline points, then compare the index's answer with a
        # direct list-based t-dominance scan for every remaining point.
        skyline = [mapping.points[0], mapping.points[1], mapping.points[2]]
        index = VirtualPointIndex(1, [encoding])
        for point in skyline:
            index.insert_mapped_point(point)
        for candidate in mapping.points:
            if candidate in skyline:
                continue
            expected = checker.point_dominated_by_any(skyline, candidate)
            got = index.dominates_candidate_point(candidate.to_values, candidate.po_values)
            assert got == expected, candidate

    def test_empty_index_dominates_nothing(self, paper_setup):
        _, mapping, encoding = paper_setup
        index = VirtualPointIndex(1, [encoding])
        candidate = mapping.points[0]
        assert not index.dominates_candidate_point(candidate.to_values, candidate.po_values)


class TestMBBQueries:
    def test_agrees_with_single_point_dominance(self, paper_setup):
        """When one skyline point t-dominates an MBB, the index must agree."""
        _, mapping, encoding = paper_setup
        checker = TDominanceChecker(mapping)
        p1 = next(p for p in mapping.points if p.po_values == ("c",) and p.to_values == (2.0,))
        index = VirtualPointIndex(1, [encoding])
        index.insert_mapped_point(p1)
        for low_ord in range(1, 10):
            for high_ord in range(low_ord, 10):
                low = (2.0, float(low_ord))
                high = (6.0, float(high_ord))
                range_set = checker.range_interval_set(0, low_ord, high_ord)
                expected = checker.dominates_mbb(p1, low, high)
                got = index.dominates_candidate_mbb(low, high, [range_set])
                assert got == expected, (low_ord, high_ord)

    def test_joint_pruning_is_allowed(self, example_dag):
        """Two skyline points may jointly cover an MBB no single point dominates."""
        schema = Schema([TotalOrderAttribute("x"), PartialOrderAttribute("p", example_dag)])
        # h and i are both leaves; neither dominates the other, but together
        # they cover the A_TO range {h, i} at equal TO value.
        dataset = Dataset(schema, [(1, "h"), (1, "i"), (5, "h"), (5, "i")])
        mapping = TSSMapping(dataset)
        encoding = mapping.encodings[0]
        checker = TDominanceChecker(mapping)
        p_h = next(p for p in mapping.points if p.po_values == ("h",) and p.to_values == (1.0,))
        p_i = next(p for p in mapping.points if p.po_values == ("i",) and p.to_values == (1.0,))
        index = VirtualPointIndex(1, [encoding])
        index.insert_mapped_point(p_h)
        index.insert_mapped_point(p_i)
        low_ord = min(encoding.ordinal("h"), encoding.ordinal("i"))
        high_ord = max(encoding.ordinal("h"), encoding.ordinal("i"))
        low, high = (1.0, float(low_ord)), (5.0, float(high_ord))
        range_set = checker.range_interval_set(0, low_ord, high_ord)
        assert not checker.dominates_mbb(p_h, low, high)
        assert not checker.dominates_mbb(p_i, low, high)
        assert index.dominates_candidate_mbb(low, high, [range_set])

    def test_empty_range_set_is_never_pruned(self, paper_setup):
        _, mapping, encoding = paper_setup
        index = VirtualPointIndex(1, [encoding])
        index.insert_mapped_point(mapping.points[0])
        from repro.order.intervals import IntervalSet

        assert not index.dominates_candidate_mbb((0.0, 1.0), (9.0, 9.0), [IntervalSet()])

    def test_combination_cap_falls_back_to_not_dominated(self, paper_setup):
        _, mapping, encoding = paper_setup
        index = VirtualPointIndex(1, [encoding], max_combinations=0)
        index.insert_mapped_point(mapping.points[0])
        checker = TDominanceChecker(mapping)
        range_set = checker.range_interval_set(0, 1, 9)
        assert not index.dominates_candidate_mbb((0.0, 1.0), (9.0, 9.0), [range_set])
