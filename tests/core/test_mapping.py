"""Unit tests for the TSS mapping (mapped space + duplicate grouping)."""

import pytest

from repro.core.mapping import TSSMapping, group_distinct_rows
from repro.data.dataset import Dataset
from repro.data.schema import Schema, TotalOrderAttribute
from repro.exceptions import SchemaError
from repro.order.encoding import encode_domain


class TestGrouping:
    def test_group_distinct_rows(self, flight_schema):
        data = Dataset(flight_schema, [(1, 0, "a"), (1, 0, "a"), (2, 0, "a"), (1, 0, "b")])
        groups = group_distinct_rows(data)
        assert len(groups) == 3
        assert groups[0] == ((1, 0, "a"), (0, 1))

    def test_grouping_preserves_insertion_order(self, flight_schema):
        data = Dataset(flight_schema, [(2, 0, "a"), (1, 0, "a"), (2, 0, "a")])
        groups = group_distinct_rows(data)
        assert [values for values, _ in groups] == [(2, 0, "a"), (1, 0, "a")]


class TestMapping:
    def test_requires_po_attribute(self):
        schema = Schema([TotalOrderAttribute("x")])
        data = Dataset(schema, [(1,)])
        with pytest.raises(SchemaError):
            TSSMapping(data)

    def test_dimensions_and_offsets(self, flight_dataset):
        mapping = TSSMapping(flight_dataset)
        assert mapping.num_total_order == 2
        assert mapping.num_partial_order == 1
        assert mapping.dimensions == 3
        assert mapping.to_offset == 2

    def test_coords_are_canonical_to_plus_ordinals(self, flight_dataset, airline_dag):
        encoding = encode_domain(airline_dag)
        mapping = TSSMapping(flight_dataset, [encoding])
        for point in mapping.points:
            assert point.coords[:2] == point.to_values
            assert point.coords[2] == float(encoding.ordinal(point.po_values[0]))

    def test_mapped_points_are_distinct(self, flight_schema):
        data = Dataset(flight_schema, [(1, 0, "a")] * 5 + [(2, 0, "b")])
        mapping = TSSMapping(data)
        assert len(mapping) == 2
        assert mapping.points[0].record_ids == (0, 1, 2, 3, 4)
        coords = [p.coords for p in mapping.points]
        assert len(set(coords)) == len(coords)

    def test_record_ids_for_expands_groups(self, flight_schema):
        data = Dataset(flight_schema, [(1, 0, "a")] * 3 + [(2, 0, "b")])
        mapping = TSSMapping(data)
        assert mapping.record_ids_for([0, 1]) == [0, 1, 2, 3]

    def test_encoding_count_must_match(self, flight_dataset, airline_dag):
        with pytest.raises(SchemaError):
            TSSMapping(flight_dataset, [encode_domain(airline_dag)] * 2)

    def test_build_rtree_round_trip(self, flight_dataset):
        mapping = TSSMapping(flight_dataset)
        tree = mapping.build_rtree(max_entries=4)
        assert len(tree) == len(mapping)
        payloads = sorted(entry.payload for entry in tree.all_entries())
        assert payloads == list(range(len(mapping)))

    def test_ordinal_range_of_rect(self, flight_dataset):
        mapping = TSSMapping(flight_dataset)
        low = (0.0, 0.0, 2.0)
        high = (10.0, 10.0, 3.0)
        assert mapping.ordinal_range_of_rect(low, high, 0) == (2, 3)

    def test_mapping_respects_precedence(self, flight_dataset, flight_schema):
        """If a record dominates another, its mapped coords are <= componentwise."""
        from repro.skyline.dominance import dominates_records

        mapping = TSSMapping(flight_dataset)
        by_values = {point.record_ids[0]: point for point in mapping.points}
        for a in flight_dataset:
            for b in flight_dataset:
                if a.id in by_values and b.id in by_values and dominates_records(flight_schema, a, b):
                    pa, pb = by_values[a.id], by_values[b.id]
                    assert all(x <= y for x, y in zip(pa.coords, pb.coords))
                    assert sum(pa.coords) < sum(pb.coords)
