"""Unit tests for the sTSS algorithm."""

import pytest

from repro.core.mapping import TSSMapping
from repro.core.stss import stss_skyline
from repro.data.workloads import WorkloadSpec
from repro.index.pager import DiskSimulator
from repro.skyline.bruteforce import brute_force_skyline
from repro.skyline.dominance import dominates_records


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        name="stss-unit",
        distribution="anticorrelated",
        cardinality=250,
        num_total_order=2,
        num_partial_order=1,
        dag_height=4,
        dag_density=0.8,
        to_domain_size=50,
        seed=21,
    )
    return spec.build()


@pytest.fixture(scope="module")
def truth(workload):
    _, dataset = workload
    return frozenset(brute_force_skyline(dataset).skyline_ids)


class TestCorrectness:
    def test_flight_example(self, flight_dataset):
        assert frozenset(stss_skyline(flight_dataset).skyline_ids) == {0, 4, 5, 8, 9}

    def test_matches_brute_force(self, workload, truth):
        _, dataset = workload
        assert frozenset(stss_skyline(dataset).skyline_ids) == truth

    @pytest.mark.parametrize(
        "options",
        [
            {"use_virtual_rtree": False, "use_dyadic_cache": False},
            {"use_virtual_rtree": False, "use_dyadic_cache": True},
            {"use_virtual_rtree": True, "use_dyadic_cache": False},
            {"use_virtual_rtree": True, "use_dyadic_cache": True},
        ],
    )
    def test_all_optimization_combinations_agree(self, workload, truth, options):
        _, dataset = workload
        assert frozenset(stss_skyline(dataset, **options).skyline_ids) == truth

    def test_small_fanout(self, workload, truth):
        _, dataset = workload
        assert frozenset(stss_skyline(dataset, max_entries=4).skyline_ids) == truth

    def test_duplicates_are_all_reported(self, flight_schema):
        from repro.data.dataset import Dataset

        rows = [(1000, 1, "b"), (1000, 1, "b"), (500, 2, "d"), (2000, 3, "d")]
        dataset = Dataset(flight_schema, rows)
        result = stss_skyline(dataset)
        assert frozenset(result.skyline_ids) == {0, 1, 2}

    def test_prebuilt_mapping_and_tree_are_reused(self, workload, truth):
        _, dataset = workload
        mapping = TSSMapping(dataset)
        tree = mapping.build_rtree(max_entries=16)
        result = stss_skyline(dataset, mapping=mapping, tree=tree)
        assert frozenset(result.skyline_ids) == truth


class TestBehaviour:
    def test_optimal_progressiveness(self, workload, truth):
        """Every reported point is final: one progress event per distinct skyline group."""
        _, dataset = workload
        result = stss_skyline(dataset)
        distinct_groups = {dataset[i].values for i in result.skyline_ids}
        assert len(result.progress) == len(distinct_groups)
        assert frozenset(result.skyline_ids) == truth

    def test_results_follow_mapped_mindist_order(self, workload):
        """Precedence: results are discovered in non-decreasing mapped mindist."""
        _, dataset = workload
        mapping = TSSMapping(dataset)
        result = stss_skyline(dataset, mapping=mapping)
        coords_by_record = {}
        for point in mapping.points:
            for record_id in point.record_ids:
                coords_by_record[record_id] = point.coords
        mindists = [sum(coords_by_record[i]) for i in result.skyline_ids]
        assert mindists == sorted(mindists)

    def test_no_result_is_dominated_by_an_earlier_result(self, workload):
        _, dataset = workload
        result = stss_skyline(dataset)
        records = [dataset[i] for i in result.skyline_ids]
        for i, later in enumerate(records):
            for earlier in records[:i]:
                assert not dominates_records(dataset.schema, earlier, later)

    def test_io_accounting(self, workload):
        _, dataset = workload
        disk = DiskSimulator()
        result = stss_skyline(dataset, disk=disk, max_entries=8)
        assert result.stats.io_reads > 0
        assert result.stats.io_reads == result.stats.nodes_expanded
        assert result.stats.total_seconds >= result.stats.io_seconds

    def test_pruning_skips_part_of_the_tree(self, workload):
        _, dataset = workload
        mapping = TSSMapping(dataset)
        tree = mapping.build_rtree(max_entries=8)
        disk = DiskSimulator()
        tree_with_disk = mapping.build_rtree(max_entries=8, disk=disk)
        disk.stats.reset()
        stss_skyline(dataset, mapping=mapping, tree=tree_with_disk, disk=disk)
        assert disk.stats.reads <= tree.node_count()

    def test_stats_counts_are_positive(self, workload):
        _, dataset = workload
        result = stss_skyline(dataset)
        assert result.stats.points_examined > 0
        assert result.stats.dominance_checks > 0
        assert result.stats.false_hits_removed == 0  # exactness: never any false hits
