"""Unit tests for the dyadic-range interval cache."""

import pytest

from repro.core.dyadic import DyadicIntervalCache
from repro.order.builders import chain, random_dag
from repro.order.encoding import encode_domain
from repro.order.intervals import IntervalSet


@pytest.fixture
def cache(example_encoding):
    return DyadicIntervalCache(example_encoding)


class TestDecomposition:
    def test_full_domain_range(self, cache, example_encoding):
        merged = cache.range_interval_set(1, example_encoding.cardinality)
        for value in example_encoding.order:
            assert merged.covers(example_encoding.interval_set(value))

    def test_matches_direct_union_for_every_range(self, cache, example_encoding):
        n = example_encoding.cardinality
        for low in range(1, n + 1):
            for high in range(low, n + 1):
                assert cache.range_interval_set(low, high) == example_encoding.range_interval_set(low, high)

    def test_single_ordinal_range(self, cache, example_encoding):
        for ordinal in range(1, example_encoding.cardinality + 1):
            value = example_encoding.value_at(ordinal)
            assert cache.range_interval_set(ordinal, ordinal) == example_encoding.interval_set(value)

    def test_out_of_bounds_ranges_are_clamped(self, cache, example_encoding):
        full = cache.range_interval_set(1, example_encoding.cardinality)
        assert cache.range_interval_set(-5, 999) == full

    def test_empty_range(self, cache):
        assert cache.range_interval_set(5, 3) == IntervalSet()

    def test_decompose_uses_logarithmically_many_pieces(self, cache):
        pieces = cache._decompose(2, 9)
        covered = sorted(p for size, start in pieces for p in range(start, start + size))
        assert covered == list(range(2, 10))
        assert len(pieces) <= 2 * 4  # 2 * log2(padded size)

    def test_cache_size_is_linear(self, example_encoding):
        cache = DyadicIntervalCache(example_encoding)
        # At most 2 * padded domain size entries (a complete binary tree).
        assert cache.num_cached_ranges <= 2 * 2 * example_encoding.cardinality


class TestOtherDomains:
    def test_chain_domain(self):
        encoding = encode_domain(chain([f"v{i}" for i in range(10)]))
        cache = DyadicIntervalCache(encoding)
        for low in range(1, 11):
            for high in range(low, 11):
                assert cache.range_interval_set(low, high) == encoding.range_interval_set(low, high)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_domains(self, seed):
        encoding = encode_domain(random_dag(13, edge_probability=0.25, seed=seed))
        cache = DyadicIntervalCache(encoding)
        n = encoding.cardinality
        for low in range(1, n + 1, 3):
            for high in range(low, n + 1, 2):
                assert cache.range_interval_set(low, high) == encoding.range_interval_set(low, high)
