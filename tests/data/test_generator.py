"""Unit tests for the synthetic data generators."""

import statistics

import pytest

from repro.data.generator import DISTRIBUTIONS, generate_dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.exceptions import DatasetError
from repro.order.lattice import lattice_domain


@pytest.fixture
def mixed_schema():
    return Schema(
        [
            TotalOrderAttribute("a"),
            TotalOrderAttribute("b"),
            PartialOrderAttribute("p", lattice_domain(3, 1.0)),
        ]
    )


class TestGeneration:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_cardinality_and_schema_respected(self, mixed_schema, distribution):
        dataset = generate_dataset(mixed_schema, 150, distribution=distribution, seed=1)
        assert len(dataset) == 150
        assert dataset.schema is mixed_schema

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_to_values_within_domain(self, mixed_schema, distribution):
        dataset = generate_dataset(
            mixed_schema, 200, distribution=distribution, to_domain_size=50, seed=2
        )
        for record in dataset:
            assert 0 <= record.values[0] < 50
            assert 0 <= record.values[1] < 50

    def test_po_values_come_from_the_domain(self, mixed_schema):
        dataset = generate_dataset(mixed_schema, 100, seed=3)
        domain = set(mixed_schema["p"].dag.values)
        assert all(record.values[2] in domain for record in dataset)

    def test_reproducible_with_seed(self, mixed_schema):
        a = generate_dataset(mixed_schema, 50, seed=9)
        b = generate_dataset(mixed_schema, 50, seed=9)
        c = generate_dataset(mixed_schema, 50, seed=10)
        assert [r.values for r in a] == [r.values for r in b]
        assert [r.values for r in a] != [r.values for r in c]

    def test_zero_cardinality(self, mixed_schema):
        assert len(generate_dataset(mixed_schema, 0, seed=1)) == 0

    def test_invalid_parameters(self, mixed_schema):
        with pytest.raises(DatasetError):
            generate_dataset(mixed_schema, -1)
        with pytest.raises(DatasetError):
            generate_dataset(mixed_schema, 10, distribution="zipf")
        with pytest.raises(DatasetError):
            generate_dataset(mixed_schema, 10, to_domain_size=0)

    def test_po_only_schema(self):
        schema = Schema([PartialOrderAttribute("p", lattice_domain(2, 1.0))])
        dataset = generate_dataset(schema, 20, seed=4)
        assert len(dataset) == 20


class TestDistributionShapes:
    def test_anticorrelated_has_negative_correlation(self):
        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        dataset = generate_dataset(schema, 2000, distribution="anticorrelated", seed=5)
        xs = [record.values[0] for record in dataset]
        ys = [record.values[1] for record in dataset]
        assert statistics.correlation(xs, ys) < -0.2

    def test_correlated_has_positive_correlation(self):
        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        dataset = generate_dataset(schema, 2000, distribution="correlated", seed=6)
        xs = [record.values[0] for record in dataset]
        ys = [record.values[1] for record in dataset]
        assert statistics.correlation(xs, ys) > 0.5

    def test_independent_has_weak_correlation(self):
        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        dataset = generate_dataset(schema, 2000, distribution="independent", seed=7)
        xs = [record.values[0] for record in dataset]
        ys = [record.values[1] for record in dataset]
        assert abs(statistics.correlation(xs, ys)) < 0.1

    def test_anticorrelated_inflates_the_skyline(self):
        from repro.skyline.bruteforce import brute_force_skyline

        schema = Schema([TotalOrderAttribute("x"), TotalOrderAttribute("y")])
        independent = generate_dataset(schema, 400, distribution="independent", seed=8)
        anticorrelated = generate_dataset(schema, 400, distribution="anticorrelated", seed=8)
        assert len(brute_force_skyline(anticorrelated)) > len(brute_force_skyline(independent))
