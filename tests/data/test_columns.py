"""Unit tests for the columnar encoded-frame data plane."""

import pytest

from repro.data.columns import (
    FRAME_ENV_VAR,
    ColumnCodec,
    EncodedFrame,
    resolve_frame_mode,
)
from repro.exceptions import DatasetError, ExperimentError
from repro.kernels.tables import RecordTables


class TestResolveFrameMode:
    def test_explicit_boolean_wins(self, monkeypatch):
        monkeypatch.setenv(FRAME_ENV_VAR, "0")
        assert resolve_frame_mode(True) is True
        monkeypatch.setenv(FRAME_ENV_VAR, "1")
        assert resolve_frame_mode(False) is False

    @pytest.mark.parametrize("word,expected", [("1", True), ("on", True), ("YES", True), ("0", False), ("off", False), ("False", False)])
    def test_env_words(self, monkeypatch, word, expected):
        monkeypatch.setenv(FRAME_ENV_VAR, word)
        assert resolve_frame_mode() is expected

    def test_unset_defaults_to_numpy_availability(self, monkeypatch):
        monkeypatch.delenv(FRAME_ENV_VAR, raising=False)
        try:
            import numpy  # noqa: F401

            expected = True
        except ImportError:
            expected = False
        assert resolve_frame_mode() is expected

    def test_invalid_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(FRAME_ENV_VAR, "sideways")
        with pytest.raises(ExperimentError, match=FRAME_ENV_VAR):
            resolve_frame_mode()

    def test_invalid_explicit_value_is_clean(self):
        with pytest.raises(ExperimentError, match="frame mode"):
            resolve_frame_mode("sideways")


class TestEncodedFrame:
    def test_columns_match_record_encoding(self, flight_dataset):
        schema = flight_dataset.schema
        frame = EncodedFrame.from_dataset(flight_dataset)
        tables = RecordTables.from_schema(schema)
        assert len(frame) == len(flight_dataset)
        assert frame.num_total_order == 2 and frame.num_partial_order == 1
        for record in flight_dataset.records:
            to_row, code_row = frame.row(record.id)
            assert tuple(to_row) == schema.canonical_to_values(record.values)
            assert tuple(code_row) == tables.encode_po(
                schema.partial_values(record.values)
            )

    def test_numpy_frame_shares_the_memoized_matrix(self, flight_dataset):
        pytest.importorskip("numpy")
        frame = EncodedFrame.from_dataset(flight_dataset)
        assert frame.uses_numpy
        assert frame.to is flight_dataset.to_numeric_matrix()
        assert not frame.codes.flags.writeable

    def test_take_renumbers_rows(self, flight_dataset):
        frame = EncodedFrame.from_dataset(flight_dataset)
        sub = frame.take([5, 8, 2])
        assert len(sub) == 3
        assert tuple(sub.row(0)[0]) == tuple(frame.row(5)[0])
        assert tuple(sub.row(1)[1]) == tuple(frame.row(8)[1])

    def test_identity_remap_is_zero_copy(self, flight_dataset):
        frame = EncodedFrame.from_dataset(flight_dataset)
        tables = RecordTables.from_schema(flight_dataset.schema)
        remapped = frame.remap_codes([table.code_of for table in tables.attributes])
        assert remapped is frame.codes

    def test_remap_translates_codes(self, flight_dataset):
        frame = EncodedFrame.from_dataset(flight_dataset)
        domain = frame.codec.domains[0]
        reversed_map = {value: len(domain) - 1 - i for i, value in enumerate(domain)}
        remapped = frame.remap_codes([reversed_map])
        for row in range(len(frame)):
            assert remapped[row][0] == reversed_map[domain[frame.codes[row][0]]]

    def test_remap_missing_value_names_the_attribute(self, flight_dataset):
        frame = EncodedFrame.from_dataset(flight_dataset)
        domain = frame.codec.domains[0]
        shrunk = {value: i for i, value in enumerate(domain[:-1])}
        with pytest.raises(DatasetError, match="'airline'"):
            frame.remap_codes([shrunk])

    def test_remap_needs_one_map_per_attribute(self, flight_dataset):
        frame = EncodedFrame.from_dataset(flight_dataset)
        with pytest.raises(DatasetError, match="one code map per PO attribute"):
            frame.remap_codes([])

    def test_codec_encode_column_names_the_attribute(self, flight_schema):
        codec = ColumnCodec.from_schema(flight_schema)
        with pytest.raises(DatasetError, match="'airline'"):
            codec.encode_column(0, ["a", "no-such-airline"])

    def test_fallback_backend_matches_numpy(self, flight_dataset, monkeypatch):
        numpy = pytest.importorskip("numpy")
        reference = EncodedFrame.from_dataset(flight_dataset)
        import repro.data.columns as columns

        monkeypatch.setattr(columns, "_numpy_or_none", lambda: None)
        fallback = EncodedFrame.from_dataset(flight_dataset)
        assert not fallback.uses_numpy
        assert numpy.asarray(fallback.to).tolist() == reference.to.tolist()
        assert numpy.asarray(fallback.codes).tolist() == reference.codes.tolist()
        sub = fallback.take([3, 1])
        assert tuple(sub.row(0)[0]) == tuple(reference.row(3)[0])

    def test_monotone_keys_match_record_key(self, small_workload):
        from repro.skyline.sfs import depth_columns, monotone_sort_key

        schema, dataset = small_workload
        frame = EncodedFrame.from_dataset(dataset)
        keys = frame.monotone_keys(depth_columns(schema, frame))
        key = monotone_sort_key(schema)
        for record in dataset.records:
            assert keys[record.id] == key(record)
