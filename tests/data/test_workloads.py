"""Unit tests for the paper's workload specifications."""

import pytest

from repro.data.workloads import (
    DEFAULT_SCALE_FACTOR,
    PAPER_CARDINALITIES,
    PAPER_DAG_DENSITIES,
    PAPER_DAG_HEIGHTS,
    PAPER_PO_COUNTS,
    PAPER_TO_COUNTS,
    WorkloadSpec,
    paper_defaults,
    scale_cardinality,
)
from repro.exceptions import ExperimentError


class TestScaling:
    def test_scale_preserves_ratios(self):
        scaled = [scale_cardinality(n) for n in PAPER_CARDINALITIES]
        assert scaled == sorted(scaled)
        assert scaled[2] / scaled[0] == pytest.approx(10.0, rel=0.1)

    def test_scale_has_floor(self):
        assert scale_cardinality(100, scale_factor=10_000) == 50

    def test_scale_rejects_bad_input(self):
        with pytest.raises(ExperimentError):
            scale_cardinality(0)
        with pytest.raises(ExperimentError):
            scale_cardinality(100, scale_factor=0)

    def test_paper_parameter_grid_matches_table_iii(self):
        assert PAPER_CARDINALITIES == (100_000, 500_000, 1_000_000, 5_000_000, 10_000_000)
        assert PAPER_TO_COUNTS == (2, 3, 4)
        assert PAPER_PO_COUNTS == (1, 2)
        assert PAPER_DAG_HEIGHTS == (2, 4, 6, 8, 10)
        assert PAPER_DAG_DENSITIES == (0.2, 0.4, 0.6, 0.8, 1.0)


class TestWorkloadSpec:
    def test_build_produces_matching_schema_and_data(self):
        spec = WorkloadSpec(name="t", cardinality=100, num_total_order=2, num_partial_order=1,
                            dag_height=3, dag_density=1.0, seed=1)
        schema, dataset = spec.build()
        assert schema.num_total_order == 2
        assert schema.num_partial_order == 1
        assert len(dataset) == 100

    def test_build_dags_one_per_po_attribute(self):
        spec = WorkloadSpec(name="t", num_partial_order=2, dag_height=3, seed=2)
        dags = spec.build_dags()
        assert len(dags) == 2
        assert dags[0].values != dags[1].values or dags[0].edges != dags[1].edges

    def test_lattice_seeds_override(self):
        spec = WorkloadSpec(name="t", num_partial_order=1, dag_height=3, lattice_seeds=(5,))
        other = WorkloadSpec(name="t", num_partial_order=1, dag_height=3, lattice_seeds=(6,))
        assert spec.build_dags()[0].values != other.build_dags()[0].values

    def test_lattice_seeds_wrong_length(self):
        spec = WorkloadSpec(name="t", num_partial_order=2, lattice_seeds=(1,))
        with pytest.raises(ExperimentError):
            spec.build_dags()

    def test_reproducible_per_seed(self):
        spec = WorkloadSpec(name="t", cardinality=60, num_partial_order=1, dag_height=3, seed=4)
        _, a = spec.build()
        _, b = spec.build()
        assert [r.values for r in a] == [r.values for r in b]

    def test_with_overrides(self):
        spec = WorkloadSpec(name="t", cardinality=100)
        bigger = spec.with_(cardinality=500)
        assert bigger.cardinality == 500 and spec.cardinality == 100

    def test_describe(self):
        spec = WorkloadSpec(name="t", cardinality=100, num_total_order=3)
        description = spec.describe()
        assert description["N"] == 100 and description["|TO|"] == 3

    def test_rejects_empty_schema(self):
        with pytest.raises(ExperimentError):
            WorkloadSpec(name="t", num_total_order=0, num_partial_order=0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ExperimentError):
            WorkloadSpec(name="t", num_total_order=-1)


class TestPaperDefaults:
    def test_static_defaults(self):
        spec = paper_defaults()
        assert spec.num_total_order == 2
        assert spec.num_partial_order == 2
        assert spec.dag_height == 8
        assert spec.dag_density == 0.8
        assert spec.cardinality == 1_000_000 // DEFAULT_SCALE_FACTOR

    def test_dynamic_defaults(self):
        spec = paper_defaults(dynamic=True)
        assert spec.num_total_order == 3
        assert spec.num_partial_order == 1
        assert spec.dag_height == 6

    def test_distribution_in_name(self):
        assert "anticorrelated" in paper_defaults(distribution="anticorrelated").name
