"""Unit tests for CSV loading and saving."""

import pytest

from repro.data.io import (
    dataset_from_rows,
    load_csv_dataset,
    load_preference_edges,
    save_csv_dataset,
    save_preference_edges,
)
from repro.exceptions import DatasetError, PartialOrderError, SchemaError


class TestDatasetCSV:
    def test_round_trip(self, tmp_path, flight_dataset, flight_schema):
        path = tmp_path / "tickets.csv"
        save_csv_dataset(flight_dataset, path)
        loaded = load_csv_dataset(path, flight_schema)
        assert len(loaded) == len(flight_dataset)
        assert [r.values for r in loaded] == [r.values for r in flight_dataset]

    def test_header_and_parsing(self, tmp_path, flight_schema):
        path = tmp_path / "tickets.csv"
        path.write_text("price,stops,airline,extra\n1200.5,1,a,ignored\n900,0,b,x\n")
        loaded = load_csv_dataset(path, flight_schema)
        assert loaded[0].values == (1200.5, 1, "a")
        assert loaded[1].values == (900, 0, "b")

    def test_missing_column(self, tmp_path, flight_schema):
        path = tmp_path / "bad.csv"
        path.write_text("price,stops\n100,1\n")
        with pytest.raises(DatasetError):
            load_csv_dataset(path, flight_schema)

    def test_empty_file(self, tmp_path, flight_schema):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_csv_dataset(path, flight_schema)

    def test_non_numeric_to_value(self, tmp_path, flight_schema):
        path = tmp_path / "bad.csv"
        path.write_text("price,stops,airline\ncheap,1,a\n")
        with pytest.raises(DatasetError):
            load_csv_dataset(path, flight_schema)

    def test_unknown_po_value_rejected_unless_validation_disabled(self, tmp_path, flight_schema):
        path = tmp_path / "bad.csv"
        path.write_text("price,stops,airline\n100,1,zeppelin\n")
        with pytest.raises(SchemaError):
            load_csv_dataset(path, flight_schema)
        loaded = load_csv_dataset(path, flight_schema, validate=False)
        assert loaded[0].values[2] == "zeppelin"

    def test_skyline_of_loaded_data(self, tmp_path, flight_dataset, flight_schema):
        from repro.core.framework import compute_skyline

        path = tmp_path / "tickets.csv"
        save_csv_dataset(flight_dataset, path)
        loaded = load_csv_dataset(path, flight_schema)
        assert frozenset(compute_skyline(loaded).skyline_ids) == {0, 4, 5, 8, 9}

    def test_dataset_from_rows(self, flight_schema):
        dataset = dataset_from_rows(
            flight_schema, [{"price": 100, "stops": 0, "airline": "a"}]
        )
        assert dataset[0].values == (100, 0, "a")


class TestPreferenceEdgeLists:
    def test_round_trip(self, tmp_path, airline_dag):
        path = tmp_path / "airlines.csv"
        save_preference_edges(airline_dag, path)
        loaded = load_preference_edges(path)
        assert set(loaded.values) == set(airline_dag.values)
        for x in airline_dag.values:
            for y in airline_dag.values:
                assert loaded.is_preferred(x, y) == airline_dag.is_preferred(x, y)

    def test_isolated_values_survive_round_trip(self, tmp_path):
        from repro.order.builders import antichain

        dag = antichain(["x", "y", "z"])
        path = tmp_path / "iso.csv"
        save_preference_edges(dag, path)
        loaded = load_preference_edges(path)
        assert set(loaded.values) == {"x", "y", "z"}
        assert loaded.num_edges == 0

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "prefs.csv"
        path.write_text("# airline preferences\n\na,b\nb,c\n\nd\n")
        dag = load_preference_edges(path)
        assert dag.is_preferred("a", "c")
        assert "d" in dag

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(PartialOrderError):
            load_preference_edges(path)

    def test_cyclic_edge_list_rejected(self, tmp_path):
        path = tmp_path / "cycle.csv"
        path.write_text("a,b\nb,a\n")
        with pytest.raises(PartialOrderError):
            load_preference_edges(path)
