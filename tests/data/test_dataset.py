"""Unit tests for datasets and records."""

import pytest

from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.exceptions import DatasetError, SchemaError
from repro.order.builders import chain


class TestDataset:
    def test_records_get_stable_ids(self, flight_dataset):
        assert [record.id for record in flight_dataset] == list(range(10))

    def test_len_and_getitem(self, flight_dataset):
        assert len(flight_dataset) == 10
        assert flight_dataset[3].values == (1200, 1, "b")
        with pytest.raises(DatasetError):
            flight_dataset[99]

    def test_validation_rejects_bad_rows(self, flight_schema):
        with pytest.raises(SchemaError):
            Dataset(flight_schema, [(100, 0, "unknown-airline")])

    def test_validation_can_be_skipped(self, flight_schema):
        dataset = Dataset(flight_schema, [(100, 0, "unknown-airline")], validate=False)
        assert len(dataset) == 1

    def test_column(self, flight_dataset):
        prices = flight_dataset.column("price")
        assert prices[0] == 1800 and len(prices) == 10

    def test_to_numeric_matrix_shape_and_canonicalization(self, airline_dag):
        pytest.importorskip("numpy")
        schema = Schema(
            [
                TotalOrderAttribute("price"),
                TotalOrderAttribute("rating", best="max"),
                PartialOrderAttribute("airline", airline_dag),
            ]
        )
        dataset = Dataset(schema, [(10, 5, "a"), (20, 3, "b")])
        matrix = dataset.to_numeric_matrix()
        assert matrix.shape == (2, 2)
        assert matrix[0].tolist() == [10.0, -5.0]

    def test_to_numeric_matrix_is_memoized_and_read_only(self, flight_dataset):
        numpy = pytest.importorskip("numpy")
        first = flight_dataset.to_numeric_matrix()
        assert flight_dataset.to_numeric_matrix() is first
        with pytest.raises(ValueError):
            first[0, 0] = -1.0
        # The failed mutation cannot have corrupted the cached copy.
        again = flight_dataset.to_numeric_matrix()
        assert again[0].tolist() == [1800.0, 0.0]
        assert numpy.shares_memory(first, again)

    def test_to_numeric_matrix_matches_canonical_rows(self, flight_dataset):
        pytest.importorskip("numpy")
        matrix = flight_dataset.to_numeric_matrix()
        schema = flight_dataset.schema
        for record in flight_dataset.records:
            assert tuple(matrix[record.id]) == schema.canonical_to_values(record.values)

    def test_partial_value_tuples(self, flight_dataset):
        po_values = flight_dataset.partial_value_tuples()
        assert po_values[0] == ("a",) and po_values[8] == ("d",)

    def test_subset_reassigns_ids(self, flight_dataset):
        subset = flight_dataset.subset([5, 8])
        assert len(subset) == 2
        assert subset[0].values == flight_dataset[5].values
        assert subset[1].id == 1

    def test_with_schema_swaps_preferences(self, flight_dataset, flight_schema):
        new_dag = chain(["d", "c", "b", "a"])
        new_schema = flight_schema.replace_partial_order({"airline": new_dag})
        converted = flight_dataset.with_schema(new_schema)
        assert converted.schema["airline"].dag is new_dag
        assert converted[0].values == flight_dataset[0].values

    def test_with_schema_rejects_mismatched_width(self, flight_dataset):
        other = Schema([TotalOrderAttribute("only")])
        with pytest.raises(DatasetError):
            flight_dataset.with_schema(other)

    def test_from_dicts(self, flight_schema):
        dataset = Dataset.from_dicts(
            flight_schema,
            [{"price": 100, "stops": 1, "airline": "a"}],
        )
        assert dataset[0].values == (100, 1, "a")

    def test_from_dicts_missing_key(self, flight_schema):
        with pytest.raises(DatasetError):
            Dataset.from_dicts(flight_schema, [{"price": 100, "stops": 1}])


class TestRecord:
    def test_value_by_name(self, flight_dataset, flight_schema):
        record = flight_dataset[0]
        assert record.value(flight_schema, "price") == 1800
        assert record.value(flight_schema, "airline") == "a"

    def test_as_dict(self, flight_dataset, flight_schema):
        assert flight_dataset[8].as_dict(flight_schema) == {"price": 500, "stops": 2, "airline": "d"}
