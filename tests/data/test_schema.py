"""Unit tests for schemas and attribute specifications."""

import pytest

from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute, make_schema
from repro.exceptions import SchemaError
from repro.order.builders import chain


@pytest.fixture
def mixed_schema(airline_dag):
    return Schema(
        [
            TotalOrderAttribute("price"),
            PartialOrderAttribute("airline", airline_dag),
            TotalOrderAttribute("rating", best="max"),
        ]
    )


class TestAttributes:
    def test_total_order_defaults_to_min(self):
        assert TotalOrderAttribute("price").best == "min"

    def test_total_order_rejects_bad_direction(self):
        with pytest.raises(SchemaError):
            TotalOrderAttribute("price", best="largest")

    def test_canonical_flips_max_attributes(self):
        assert TotalOrderAttribute("rating", best="max").canonical(4.0) == -4.0
        assert TotalOrderAttribute("price").canonical(4.0) == 4.0

    def test_partial_attribute_domain_and_validate(self, airline_dag):
        attribute = PartialOrderAttribute("airline", airline_dag)
        assert set(attribute.domain) == {"a", "b", "c", "d"}
        attribute.validate("a")
        with pytest.raises(SchemaError):
            attribute.validate("z")

    def test_is_partial_flags(self, airline_dag):
        assert PartialOrderAttribute("airline", airline_dag).is_partial
        assert not TotalOrderAttribute("price").is_partial


class TestSchema:
    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self, airline_dag):
        with pytest.raises(SchemaError):
            Schema([TotalOrderAttribute("x"), PartialOrderAttribute("x", airline_dag)])

    def test_positions_and_lookup(self, mixed_schema):
        assert mixed_schema.position("price") == 0
        assert mixed_schema.position("rating") == 2
        assert mixed_schema["airline"].is_partial
        assert "airline" in mixed_schema and "bogus" not in mixed_schema
        with pytest.raises(SchemaError):
            mixed_schema.position("bogus")

    def test_to_po_views(self, mixed_schema):
        assert mixed_schema.total_order_positions == (0, 2)
        assert mixed_schema.partial_order_positions == (1,)
        assert mixed_schema.num_total_order == 2
        assert mixed_schema.num_partial_order == 1
        assert [a.name for a in mixed_schema.total_order_attributes] == ["price", "rating"]
        assert [a.name for a in mixed_schema.partial_order_attributes] == ["airline"]

    def test_validate_row(self, mixed_schema):
        mixed_schema.validate_row((100, "a", 4))
        with pytest.raises(SchemaError):
            mixed_schema.validate_row((100, "a"))
        with pytest.raises(SchemaError):
            mixed_schema.validate_row((100, "z", 4))
        with pytest.raises(SchemaError):
            mixed_schema.validate_row(("cheap", "a", 4))
        with pytest.raises(SchemaError):
            mixed_schema.validate_row((True, "a", 4))

    def test_canonical_to_values(self, mixed_schema):
        assert mixed_schema.canonical_to_values((100, "a", 4)) == (100.0, -4.0)

    def test_partial_values(self, mixed_schema):
        assert mixed_schema.partial_values((100, "a", 4)) == ("a",)

    def test_replace_partial_order(self, mixed_schema):
        new_dag = chain(["a", "b", "c", "d"])
        replaced = mixed_schema.replace_partial_order({"airline": new_dag})
        assert replaced["airline"].dag is new_dag
        assert replaced.names == mixed_schema.names

    def test_replace_partial_order_rejects_to_attribute(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.replace_partial_order({"price": chain(["a", "b"])})

    def test_equality(self, mixed_schema, airline_dag):
        same = Schema(
            [
                TotalOrderAttribute("price"),
                PartialOrderAttribute("airline", airline_dag),
                TotalOrderAttribute("rating", best="max"),
            ]
        )
        assert mixed_schema == same

    def test_make_schema_helper(self, airline_dag):
        schema = make_schema(total_order=["price", TotalOrderAttribute("rating", best="max")],
                             partial_order=[("airline", airline_dag)])
        assert schema.names == ("price", "rating", "airline")
        assert schema.num_partial_order == 1
