"""``repro serve`` signal handling: SIGTERM/SIGINT drain and exit 0."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

_SERVE_CMD = [
    sys.executable,
    "-m",
    "repro",
    "serve",
    "--port",
    "0",
    "--cardinality",
    "200",
    "--workers",
    "0",
]


def _spawn_serve():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        _SERVE_CMD,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )


def _wait_for_listening(process) -> str:
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            pytest.fail("repro serve exited before listening")
        if "listening on" in line:
            return line
        time.sleep(0.01)
    pytest.fail("repro serve never reported listening")


@pytest.mark.parametrize(
    "signum", [signal.SIGTERM, signal.SIGINT], ids=["sigterm", "sigint"]
)
def test_serve_signal_drains_and_exits_zero(signum):
    process = _spawn_serve()
    try:
        _wait_for_listening(process)
        process.send_signal(signum)
        remainder = process.communicate(timeout=60)[0]
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    assert process.returncode == 0, remainder
    assert "shut down cleanly" in remainder
