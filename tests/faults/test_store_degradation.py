"""Store degradation ladder: mmap checksum failure -> copying re-read.

With ``crc="lazy"`` an injected first-touch failure on an mmap section is
absorbed by re-reading that section into process memory and verifying the
copy; the store stays usable and reports the section in
``degraded_sections``.  With ``crc="eager"`` there is no ladder — the open
fails with a typed :class:`~repro.exceptions.StoreError`.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.api import open_dataset
from repro.engine.batch import BatchQuery
from repro.exceptions import StoreError
from repro.faults.registry import describe, install


def _skyline(path, **options):
    with open_dataset(path, workers=0, **options) as engine:
        return engine.run_query(BatchQuery("base")).skyline_ids


class TestMmapLazyDegradation:
    @pytest.mark.parametrize(
        "clause",
        [
            "store.section_read:raise:times=1",
            # corrupt with no payload at the mmap touch degrades to raise —
            # the fallback path is identical.
            "store.section_read:corrupt:times=1",
        ],
    )
    def test_single_fault_degrades_one_section_identically(
        self, packed_store, clause
    ):
        path, _ = packed_store
        reference = _skyline(path, mmap=True, crc="lazy")
        install(clause)
        with open_dataset(path, mmap=True, crc="lazy", workers=0) as engine:
            result = engine.run_query(BatchQuery("base"))
            degraded = engine.summary()["store"]["degraded_sections"]
        assert result.skyline_ids == reference
        assert len(degraded) == 1
        assert describe()[0]["fires"] == 1

    def test_persistent_fault_degrades_every_mmap_section(self, packed_store):
        path, _ = packed_store
        reference = _skyline(path, mmap=True, crc="lazy")
        install("store.section_read:raise")
        with open_dataset(path, mmap=True, crc="lazy", workers=0) as engine:
            result = engine.run_query(BatchQuery("base"))
            store_summary = engine.summary()["store"]
        assert result.skyline_ids == reference
        assert len(store_summary["degraded_sections"]) >= 1
        assert store_summary["mmap"] is True  # still an mmap store

    def test_degraded_sections_survive_in_describe(self, packed_store):
        path, _ = packed_store
        install("store.section_read:raise:times=1")
        with open_dataset(path, mmap=True, crc="lazy", workers=0) as engine:
            engine.run_query(BatchQuery("base"))
            described = engine.store.describe()
        assert described["degraded_sections"]
        assert set(described["degraded_sections"]) <= set(described["sections"])


class TestEagerModeFailsClosed:
    def test_eager_crc_raises_typed_at_open(self, packed_store):
        path, _ = packed_store
        install("store.section_read:raise:times=1")
        with pytest.raises(StoreError, match="injected fault"):
            _skyline(path, mmap=True, crc="eager")

    def test_nonmmap_load_corruption_raises_typed(self, packed_store):
        # Without mmap there is no copying fallback: a corrupted section
        # read is caught by the CRC and surfaces as a typed StoreError
        # (never a silently wrong answer).
        path, _ = packed_store
        install("store.section_read:corrupt:times=1")
        with pytest.raises(StoreError, match="checksum|corrupt"):
            _skyline(path, mmap=False, crc="lazy")
