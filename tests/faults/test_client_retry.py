"""Client retry policy, idempotency tokens and the service-handler fault point."""

from __future__ import annotations

import socket

import pytest

from repro.exceptions import RetryExhaustedError, ServiceError
from repro.faults.registry import install
from repro.service import ServiceClient


class TestTransportClassification:
    def test_connect_refused_names_host_and_port(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServiceError, match=rf"127\.0\.0\.1:{free_port}"):
            ServiceClient("127.0.0.1", free_port, retries=0)

    def test_timeout_vs_reset_messages(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            timeout_error = client._transport_error(socket.timeout("t"))
            reset_error = client._transport_error(ConnectionResetError("r"))
            other_error = client._transport_error(OSError("o"))
        where = f"{host}:{port}"
        assert "timed out" in str(timeout_error) and where in str(timeout_error)
        assert "connection reset" in str(reset_error) and where in str(reset_error)
        assert where in str(other_error)
        assert "timed out" not in str(reset_error)


class TestRetries:
    def test_transient_socket_fault_is_retried(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            install("client.socket:raise:times=1")
            response = client.query(seed=5, omit_ids=True)
            assert response["ok"] and response["skyline_size"] > 0

    def test_retry_exhaustion_carries_attempt_history(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port, retries=2, backoff=0.01) as client:
            install("client.socket:raise")  # persistent
            with pytest.raises(RetryExhaustedError) as excinfo:
                client.ping()
        error = excinfo.value
        assert isinstance(error, ServiceError)  # callers' except clauses hold
        assert len(error.attempts) == 3
        assert all("connection reset" in attempt for attempt in error.attempts)
        assert f"{host}:{port}" in str(error)

    def test_mutation_without_token_is_never_retried(
        self, running_service, chaos_workload
    ):
        _, dataset = chaos_workload
        _, host, port = running_service
        row = list(dataset.records[0].values)
        with ServiceClient(host, port, retries=3, backoff=0.01) as client:
            install("client.socket:raise:times=1")
            # times=1: a single retry would succeed — proving no retry ran.
            with pytest.raises(ServiceError) as excinfo:
                client.insert([row])
            assert not isinstance(excinfo.value, RetryExhaustedError)
            # The fault fired exactly once and was never re-delivered: the
            # next (idempotent) request consumes no further fires.
            assert client.ping()["ok"]

    def test_mutation_with_token_is_retried_and_applied_once(
        self, running_service, chaos_workload
    ):
        service, host, port = running_service
        _, dataset = chaos_workload
        row = list(dataset.records[0].values)
        before = service.engine.summary()["mutations_applied"]
        with ServiceClient(host, port, retries=2, backoff=0.01) as client:
            install("client.socket:raise:times=1")
            ids = client.insert([row], token="chaos-insert-1")
            assert len(ids) == 1
        assert service.engine.summary()["mutations_applied"] == before + 1


class TestIdempotencyTokens:
    def test_token_replays_the_remembered_response(
        self, running_service, chaos_workload
    ):
        service, host, port = running_service
        _, dataset = chaos_workload
        row = list(dataset.records[0].values)
        payload = {"op": "insert", "rows": [row], "token": "dup-1"}
        with ServiceClient(host, port) as client:
            first = client.checked_request(payload)
            second = client.checked_request(payload)
        assert second["ids"] == first["ids"]
        assert second.get("replayed") is True and "replayed" not in first
        # Applied once: the duplicate delivery changed nothing.
        assert service.engine.summary()["mutations_applied"] == 1

    def test_distinct_tokens_apply_independently(
        self, running_service, chaos_workload
    ):
        _, dataset = chaos_workload
        _, host, port = running_service
        row = list(dataset.records[0].values)
        with ServiceClient(host, port) as client:
            ids_a = client.insert([row], token="a")
            ids_b = client.insert([row], token="b")
        assert ids_a != ids_b

    def test_malformed_token_is_rejected(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="token"):
                client.checked_request({"op": "delete", "ids": [1], "token": ""})


class TestServiceHandlerFaults:
    def test_handler_raise_relays_typed_and_keeps_connection(
        self, running_service
    ):
        _, host, port = running_service
        with ServiceClient(host, port, retries=0) as client:
            install("service.handler:raise:times=1")
            with pytest.raises(ServiceError, match="service.handler"):
                client.ping()
            # Same connection, next request: the handler loop survived.
            assert client.ping()["ok"]

    def test_handler_delay_does_not_change_results(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            reference = client.query(seed=6, omit_ids=True)["skyline_size"]
            install("service.handler:delay:ms=30,times=1")
            delayed = client.query(seed=7, omit_ids=True)["skyline_size"]
            baseline = client.query(seed=6, omit_ids=True)["skyline_size"]
        assert baseline == reference
        assert delayed > 0
