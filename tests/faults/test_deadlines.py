"""Deadline propagation: engine phase checks and service-level enforcement.

A deadline is all-or-nothing: an expired request answers a typed
:class:`~repro.exceptions.DeadlineExceededError` (``error_kind``
``deadline_exceeded`` on the wire) — never partial results.
"""

from __future__ import annotations

import time

import pytest

from repro.api import open_dataset
from repro.engine.batch import BatchQuery
from repro.exceptions import DeadlineExceededError, ServiceError
from repro.service import ServiceClient


class TestEngineDeadline:
    def test_expired_deadline_raises_before_computing(self, chaos_workload):
        _, dataset = chaos_workload
        with open_dataset(dataset, workers=0) as engine:
            with pytest.raises(DeadlineExceededError, match="deadline"):
                engine.run_query(
                    BatchQuery("base"), deadline=time.monotonic() - 1.0
                )
            # The failed attempt cached nothing: the same query without a
            # deadline computes the full answer.
            result = engine.run_query(BatchQuery("base"))
            assert result.skyline_ids and not result.from_cache

    def test_generous_deadline_answers_normally(self, chaos_workload):
        _, dataset = chaos_workload
        with open_dataset(dataset, workers=0) as engine:
            unbounded = engine.run_query(BatchQuery("base")).skyline_ids
        with open_dataset(dataset, workers=0) as engine:
            bounded = engine.run_query(
                BatchQuery("base"), deadline=time.monotonic() + 60.0
            ).skyline_ids
        assert bounded == unbounded

    def test_cached_result_served_even_past_deadline(self, chaos_workload):
        # A cache hit is instant, so an expired deadline does not block it:
        # the deadline bounds *work*, and a hit does none.
        _, dataset = chaos_workload
        with open_dataset(dataset, workers=0) as engine:
            first = engine.run_query(BatchQuery("base"))
            again = engine.run_query(
                BatchQuery("base"), deadline=time.monotonic() - 1.0
            )
            assert again.from_cache
            assert again.skyline_ids == first.skyline_ids

    def test_sharded_query_honors_deadline(self, chaos_workload):
        _, dataset = chaos_workload
        with open_dataset(dataset, workers=2, shards=2) as engine:
            with pytest.raises(DeadlineExceededError):
                engine.run_query(
                    BatchQuery("base"), deadline=time.monotonic() - 1.0
                )


class TestServiceDeadline:
    def test_expired_deadline_is_a_typed_wire_error(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            with pytest.raises(DeadlineExceededError):
                client.query(seed=1, deadline_ms=0.001, omit_ids=True)
            # The connection survives the typed failure and the deadline
            # never poisoned the cache: the same query now answers fully.
            response = client.query(seed=1, omit_ids=True)
            assert response["skyline_size"] > 0

    def test_generous_deadline_answers_normally(self, running_service):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            response = client.query(seed=2, deadline_ms=60_000, omit_ids=True)
            assert response["ok"] and response["skyline_size"] > 0

    def test_event_loop_enforces_deadline_on_a_stalled_engine(
        self, running_service
    ):
        # Even when the engine ignores its cooperative deadline checks (a
        # hung phase), asyncio.wait_for guarantees the response deadline.
        service, host, port = running_service

        def stalled(query, deadline=None):
            time.sleep(1.0)
            raise AssertionError("the stalled engine returned")

        original = service.engine.run_query
        service.engine.run_query = stalled
        try:
            started = time.monotonic()
            with ServiceClient(host, port) as client:
                with pytest.raises(DeadlineExceededError):
                    client.query(seed=3, deadline_ms=100)
            assert time.monotonic() - started < 1.0
        finally:
            service.engine.run_query = original

    @pytest.mark.parametrize("bogus", [-5, 0, "soon", True])
    def test_malformed_deadline_is_a_query_error(self, running_service, bogus):
        _, host, port = running_service
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="deadline_ms"):
                client.checked_request(
                    {"op": "query", "seed": 4, "deadline_ms": bogus}
                )

    def test_mutations_accept_deadlines(self, running_service):
        service, host, port = running_service

        def stalled():
            time.sleep(1.0)
            raise AssertionError("the stalled compaction returned")

        original = service.engine.compact
        service.engine.compact = stalled
        try:
            with ServiceClient(host, port) as client:
                with pytest.raises(DeadlineExceededError):
                    client.checked_request({"op": "compact", "deadline_ms": 100})
        finally:
            service.engine.compact = original
