"""The chaos identity matrix: faulted reads answer identically or fail typed.

For every read-path fault point and mode, queries must either return results
bitwise-identical to a fault-free run or raise a typed
:class:`~repro.exceptions.ReproError` — never partial results, never silent
divergence, never a hang (every scenario runs under ``assert_completes``).
"""

from __future__ import annotations

import pytest

from repro.api import open_dataset
from repro.engine.batch import BatchQuery, queries_from_seeds
from repro.exceptions import ReproError
from repro.faults.registry import describe, install


def _queries(schema):
    return [BatchQuery("base")] + queries_from_seeds(schema, range(31, 35))


def _attempt(engine, query, expected):
    """One faulted query: 'identical', or 'typed-error' — anything else fails."""
    try:
        result = engine.run_query(query)
    except ReproError:
        return "typed-error"
    assert result.skyline_ids == expected, (
        f"faulted query {query.name!r} diverged from the fault-free run"
    )
    return "identical"


class TestStoreReadFaults:
    @pytest.mark.parametrize(
        "clause",
        [
            "store.section_read:raise:times=2",
            "store.section_read:delay:ms=2",
            "store.section_read:corrupt:times=2",
        ],
    )
    def test_identity_or_typed_error(self, packed_store, bounded, clause):
        path, _ = packed_store

        def scenario():
            with open_dataset(path, crc="lazy", workers=0) as engine:
                schema = engine.schema
                queries = _queries(schema)
                reference = [engine.run_query(q).skyline_ids for q in queries]
            install(clause)
            outcomes = []
            try:
                with open_dataset(path, crc="lazy", workers=0) as engine:
                    for query, expected in zip(_queries(schema), reference):
                        outcomes.append(_attempt(engine, query, expected))
            except ReproError:
                # The store open itself may fail typed (eager-verified
                # sections trip before any query ran) — a valid outcome.
                outcomes.append("typed-error")
            return outcomes

        outcomes = bounded(scenario)
        assert outcomes
        assert set(outcomes) <= {"identical", "typed-error"}
        if "delay" in clause:
            # Delays never change results.
            assert set(outcomes) == {"identical"}
            assert any(clause["fires"] > 0 for clause in describe())


class TestPoolWorkerFaults:
    @pytest.mark.parametrize(
        "clause, heals",
        [
            ("pool.worker_task:raise:times=1", True),
            ("pool.worker_task:delay:ms=20,times=2", False),
            ("pool.worker_task:exit:times=1", True),
        ],
    )
    def test_identity_through_self_healing(
        self, chaos_workload, bounded, monkeypatch, clause, heals
    ):
        _, dataset = chaos_workload

        def reference_run():
            with open_dataset(dataset, workers=2, shards=2) as engine:
                return [
                    engine.run_query(q).skyline_ids
                    for q in _queries(engine.schema)
                ]

        reference = bounded(reference_run)
        # Injected via the environment, not install(): pool workers started
        # from a threaded parent are *spawned*, and a spawned worker arms
        # itself by resolving REPRO_FAULTS lazily on its first trip.
        monkeypatch.setenv("REPRO_FAULTS", clause)

        def scenario():
            with open_dataset(dataset, workers=2, shards=2) as engine:
                outcomes = [
                    _attempt(engine, query, expected)
                    for query, expected in zip(_queries(engine.schema), reference)
                ]
                summary = engine.summary()
            return outcomes, summary

        outcomes, summary = bounded(scenario)
        # The healing ladder makes every pool failure recoverable: whether
        # the fault raises in the worker, delays it, or kills the process,
        # each query's answer is bitwise-identical to the fault-free run.
        assert outcomes == ["identical"] * len(outcomes)
        if heals:
            sharding = summary["sharding"]
            assert sharding["pool_respawns"] >= 1
            assert sharding["last_pool_failure"]
