"""Unit tests of the fault-injection registry and its spec grammar."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.config import RuntimeConfig, resolve_faults
from repro.exceptions import ExperimentError, InjectedFaultError
from repro.faults.registry import (
    FAULT_EXIT_CODE,
    FAULT_MODES,
    FAULT_POINTS,
    FaultRegistry,
    FaultSpec,
    describe,
    install,
    installed_registry,
    parse_faults_spec,
    reset,
    trip,
    uninstall,
)


class TestParse:
    def test_minimal_clause(self):
        (spec,) = parse_faults_spec("pool.worker_task:raise")
        assert spec == FaultSpec(point="pool.worker_task", mode="raise")

    def test_full_grammar(self):
        specs = parse_faults_spec(
            "client.socket:delay:ms=50,prob=0.5,seed=7;"
            "delta.log_append:raise:stage=post,times=2,after=1"
        )
        assert specs[0] == FaultSpec(
            point="client.socket", mode="delay", probability=0.5, seed=7,
            delay_ms=50.0,
        )
        assert specs[1] == FaultSpec(
            point="delta.log_append", mode="raise", times=2, after=1,
            stage="post",
        )

    def test_empty_clauses_skipped(self):
        assert parse_faults_spec("; ;") == ()

    @pytest.mark.parametrize(
        "text",
        [
            "pool.worker_task",  # no mode
            "nowhere:raise",  # unknown point
            "pool.worker_task:explode",  # unknown mode
            "pool.worker_task:raise:bogus",  # option without '='
            "pool.worker_task:raise:color=red",  # unknown option
            "pool.worker_task:raise:times=many",  # non-numeric
            "pool.worker_task:raise:prob=1.5",  # out of range
        ],
    )
    def test_malformed_specs_raise_typed(self, text):
        with pytest.raises(ExperimentError):
            parse_faults_spec(text)

    def test_every_point_and_mode_parses(self):
        for point in FAULT_POINTS:
            for mode in FAULT_MODES:
                if mode == "exit":
                    continue  # parse-only here; behavior tested below
                assert parse_faults_spec(f"{point}:{mode}")


class TestClauseCounters:
    def _registry(self, text):
        return FaultRegistry(parse_faults_spec(text))

    def test_times_caps_fires(self):
        registry = self._registry("service.handler:raise:times=2")
        fired = [registry.hit("service.handler") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_after_skips_leading_hits(self):
        registry = self._registry("service.handler:raise:after=2,times=1")
        fired = [registry.hit("service.handler") is not None for _ in range(4)]
        assert fired == [False, False, True, False]

    def test_stage_mismatch_is_not_a_hit(self):
        registry = self._registry("delta.log_append:raise:stage=post,times=1")
        assert registry.hit("delta.log_append", stage="pre") is None
        assert registry.hit("delta.log_append") is None
        assert registry.hit("delta.log_append", stage="post") is not None
        assert registry.hit("delta.log_append", stage="post") is None

    def test_unmatched_point_never_fires(self):
        registry = self._registry("client.socket:raise")
        assert registry.hit("store.section_read") is None

    def test_probability_is_seed_deterministic(self):
        pattern_a = [
            self._registry("service.handler:raise:prob=0.5,seed=42")
            .hit("service.handler")
            is not None
            for _ in range(1)
        ]
        registry_b = self._registry("service.handler:raise:prob=0.5,seed=42")
        registry_c = self._registry("service.handler:raise:prob=0.5,seed=42")
        pattern_b = [registry_b.hit("service.handler") is not None for _ in range(20)]
        pattern_c = [registry_c.hit("service.handler") is not None for _ in range(20)]
        assert pattern_b == pattern_c
        assert any(pattern_b) and not all(pattern_b)
        assert pattern_a  # silence the unused-variable hint

    def test_corrupt_bytes_is_deterministic_single_byte_flip(self):
        registry = self._registry("store.section_read:corrupt:seed=3")
        spec = registry.specs[0]
        data = bytes(range(100))
        mutated_a = registry.corrupt_bytes(spec, data)
        mutated_b = registry.corrupt_bytes(spec, data)
        assert mutated_a == mutated_b != data
        assert len(mutated_a) == len(data)
        assert sum(a != b for a, b in zip(mutated_a, data)) == 1

    def test_describe_counts_hits_and_fires(self):
        registry = self._registry("service.handler:raise:times=1")
        registry.hit("service.handler")
        registry.hit("service.handler")
        (clause,) = registry.describe()
        assert clause["hits"] == 2 and clause["fires"] == 1


class TestTrip:
    def test_disabled_trip_is_a_passthrough(self):
        assert installed_registry() is None
        assert trip("store.section_read", data=b"payload") == b"payload"
        assert trip("store.section_read") is None

    def test_raise_mode_default_error(self):
        install("service.handler:raise")
        with pytest.raises(InjectedFaultError, match="service.handler"):
            trip("service.handler")

    def test_raise_mode_site_exception_substitution(self):
        install("client.socket:raise")
        with pytest.raises(ConnectionResetError, match="client.socket"):
            trip("client.socket", exc=lambda p: ConnectionResetError(p))

    def test_corrupt_mode_flips_payload(self):
        install("delta.log_append:corrupt")
        payload = b"x" * 64
        assert trip("delta.log_append", data=payload) != payload

    def test_corrupt_without_payload_degrades_to_raise(self):
        install("service.handler:corrupt")
        with pytest.raises(InjectedFaultError):
            trip("service.handler")

    def test_uninstall_disables(self):
        install("service.handler:raise")
        uninstall()
        trip("service.handler")  # must not raise
        assert describe() == []

    def test_exit_mode_kills_the_process(self, tmp_path):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        script = (
            "from repro.faults.registry import install, trip\n"
            "install('pool.worker_task:exit')\n"
            "trip('pool.worker_task')\n"
            "print('unreachable')\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "PYTHONPATH": os.path.abspath(src)},
            capture_output=True,
            timeout=60,
        )
        assert completed.returncode == FAULT_EXIT_CODE
        assert b"unreachable" not in completed.stdout


class TestEnvironmentResolution:
    def test_env_spec_arms_injection(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "service.handler:raise:times=1")
        reset()
        with pytest.raises(InjectedFaultError):
            trip("service.handler")
        trip("service.handler")  # times=1: second trip passes

    def test_malformed_env_spec_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "bogus")
        with pytest.raises(ExperimentError, match="REPRO_FAULTS"):
            resolve_faults()

    def test_runtime_config_resolves_and_installs(self):
        config = RuntimeConfig.resolve(faults="service.handler:raise")
        assert config.faults == "service.handler:raise"
        config.install_faults()
        with pytest.raises(InjectedFaultError):
            trip("service.handler")

    def test_runtime_config_rejects_malformed_spec(self):
        with pytest.raises(ExperimentError):
            RuntimeConfig.resolve(faults="nope")
