"""Delta-log quarantine: corruption beyond the torn-tail rule.

A crash truncates a log; it does not rewrite the middle.  A CRC-bad entry
*followed by more valid data* is therefore real corruption: the file is set
aside as ``<log>.quarantined-<generation>``, a fresh log is rebuilt from the
CRC-valid prefix, and the engine reports what was saved and what was set
aside — never a refusal to open, never a silent drop.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.engine.batch import BatchQuery, BatchQueryEngine
from repro.exceptions import StoreError
from repro.store.delta import DeltaLog, delta_log_path

_HEADER_SIZE = 16  # 8-byte magic + <Q generation
_FRAME = struct.Struct("<cIQ")  # kind, crc32, payload length


def _entry_offsets(log_bytes: bytes) -> list[tuple[int, int]]:
    """``(payload_offset, payload_length)`` for each frame in the log."""
    offsets = []
    cursor = _HEADER_SIZE
    while cursor + _FRAME.size <= len(log_bytes):
        _, _, length = _FRAME.unpack_from(log_bytes, cursor)
        offsets.append((cursor + _FRAME.size, length))
        cursor += _FRAME.size + length
    return offsets


def _flip_payload_byte(log_path: str, entry: int) -> None:
    with open(log_path, "r+b") as handle:
        data = handle.read()
        offset, length = _entry_offsets(data)[entry]
        assert length > 0
        handle.seek(offset)
        handle.write(bytes([data[offset] ^ 0xFF]))


def _dominant_row(dataset):
    row = list(dataset.records[0].values)
    row[0] = -1.0
    row[1] = -1.0
    return tuple(row)


@pytest.fixture
def corrupted_log(packed_store):
    """A store whose log has 3 entries, the 2nd corrupted mid-log."""
    path, dataset = packed_store
    with BatchQueryEngine(path, compact_threshold=0) as engine:
        first = engine.insert([_dominant_row(dataset)])
        engine.insert([tuple(dataset.records[1].values)])
        engine.delete([0])
    _flip_payload_byte(delta_log_path(path), 1)
    return path, dataset, first


class TestEngineQuarantine:
    def test_reopen_quarantines_and_replays_the_valid_prefix(
        self, corrupted_log
    ):
        path, _, first_ids = corrupted_log
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            report = engine.summary()["delta_log_recovery"]
            assert report is not None
            assert report["reason"] == "corrupt entry mid-log"
            assert report["entries_recovered"] == 1
            assert report["bytes_quarantined"] > 0
            assert os.path.exists(report["quarantined"])
            # Entry 1 (the dominant insert) replayed; entries 2-3 were lost
            # with the corruption but are preserved in the quarantine file.
            assert engine.summary()["delta"]["pending_mutations"] == 1
            skyline = engine.run_query(BatchQuery("base")).skyline_ids
            assert first_ids[0] in skyline

    def test_rebuilt_log_holds_only_the_recovered_prefix(self, corrupted_log):
        path, _, _ = corrupted_log
        with BatchQueryEngine(path, compact_threshold=0):
            pass
        rebuilt = DeltaLog.load(delta_log_path(path))
        assert rebuilt is not None
        assert rebuilt.generation == 0
        assert len(rebuilt.entries) == 1
        assert rebuilt.entries[0][0] == "insert"

    def test_engine_stays_mutable_after_recovery(self, corrupted_log):
        path, dataset, _ = corrupted_log
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            engine.insert([tuple(dataset.records[2].values)])
            assert engine.summary()["delta"]["pending_mutations"] == 2
            assert engine.run_query(BatchQuery("base")).skyline_ids

    def test_clean_log_reports_no_recovery(self, packed_store):
        path, dataset = packed_store
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            engine.insert([_dominant_row(dataset)])
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            assert engine.summary()["delta_log_recovery"] is None
            assert engine.summary()["delta"]["pending_mutations"] == 1


class TestRecoverClassmethod:
    def test_stale_generation_recovers_nothing(self, corrupted_log):
        path, _, _ = corrupted_log
        log, report = DeltaLog.recover(delta_log_path(path), generation=999)
        assert log is None
        assert report is not None
        assert report["entries_recovered"] == 0
        assert report["log_generation"] == 0
        assert os.path.exists(report["quarantined"])

    def test_bad_header_is_quarantined_not_fatal(self, packed_store):
        path, _ = packed_store
        log_path = delta_log_path(path)
        with open(log_path, "wb") as handle:
            handle.write(b"this is not a delta log at all")
        # load() refuses a bad header (not a crash artifact) ...
        with pytest.raises(StoreError, match="bad magic"):
            DeltaLog.load(log_path)
        # ... but the engine open ladder quarantines it and keeps going.
        with BatchQueryEngine(path, compact_threshold=0) as engine:
            report = engine.summary()["delta_log_recovery"]
            assert report["reason"] == "bad header"
            assert report["entries_recovered"] == 0
            assert engine.run_query(BatchQuery("base")).skyline_ids
        assert os.path.exists(f"{log_path}.quarantined-0")
