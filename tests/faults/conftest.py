"""Shared fixtures for the chaos suite (:mod:`repro.faults`).

Every test starts and ends with a clean fault registry and no
``REPRO_FAULTS`` in the environment, so clauses installed by one test can
never leak into another.  ``assert_completes`` is the suite-wide hang guard:
chaos tests run their scenario through it so an injected fault that deadlocks
fails the test instead of wedging the whole run.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.data.workloads import WorkloadSpec
from repro.faults import registry as faults_registry

#: Upper bound for any single chaos scenario (generous: pools fork + retry).
CHAOS_DEADLINE_SECONDS = 120.0


@pytest.fixture(autouse=True)
def clean_fault_registry(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults_registry.reset()
    yield
    faults_registry.reset()


@pytest.fixture
def bounded():
    """The suite hang guard as a fixture (conftest is not importable here)."""
    return assert_completes


def assert_completes(fn, timeout: float = CHAOS_DEADLINE_SECONDS):
    """Run ``fn()`` in a worker thread, failing the test if it hangs."""
    outcome: dict[str, object] = {}

    def runner() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as error:  # re-raised in the test thread below
            outcome["error"] = error

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        pytest.fail(f"chaos scenario still running after {timeout:.0f}s (hang)")
    if "error" in outcome:
        raise outcome["error"]  # type: ignore[misc]
    return outcome.get("value")


@pytest.fixture
def chaos_workload():
    spec = WorkloadSpec(
        name="chaos",
        cardinality=250,
        num_total_order=2,
        num_partial_order=1,
        dag_height=3,
        dag_density=0.8,
        to_domain_size=40,
        seed=13,
    )
    return spec.build()


@pytest.fixture
def packed_store(chaos_workload, tmp_path):
    from repro.api import pack

    _, dataset = chaos_workload
    path = str(tmp_path / "chaos.rpro")
    pack(dataset, path)
    return path, dataset


@pytest.fixture
def running_service(chaos_workload):
    """A live query service on an ephemeral port: ``(service, host, port)``.

    Server and test share one process, so faults installed by a test are
    visible to both sides — distinct points target each side independently
    (``service.handler`` fires in the dispatch loop, ``client.socket`` in
    the client transport).
    """
    from repro.service import QueryService

    _, dataset = chaos_workload
    service = QueryService(dataset, num_shards=2, workers=0)
    loop = asyncio.new_event_loop()
    address: dict[str, object] = {}
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def main() -> None:
            host, port = await service.start("127.0.0.1", 0)
            address["host"], address["port"] = host, port
            started.set()
            await service.serve_until_shutdown()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "service did not start"
    yield service, address["host"], address["port"]
    try:
        loop.call_soon_threadsafe(service.request_shutdown)
    except RuntimeError:  # loop already closed by an in-test shutdown
        pass
    thread.join(timeout=10)
    assert not thread.is_alive(), "service thread did not shut down"
