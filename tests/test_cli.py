"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_at_least_one_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_profile_and_output(self):
        args = build_parser().parse_args(["fig7", "--profile", "full", "--output", "x.txt"])
        assert args.experiments == ["fig7"]
        assert args.profile == "full"
        assert args.output == "x.txt"


class TestMain:
    def test_unknown_experiment_returns_error_code(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_table1_runs_and_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "p1, p5, p6, p9, p10" in out

    def test_markdown_output(self, capsys):
        assert main(["table1", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("|")

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table1", "--output", str(target)]) == 0
        assert "Table I" in target.read_text()

    def test_module_entry_point_importable(self):
        import repro.__main__  # noqa: F401
