"""Unit tests for the command-line interface."""

import pytest

from repro.cli import (
    build_batch_query_parser,
    build_parser,
    build_query_parser,
    build_serve_parser,
    main,
)


class TestParser:
    def test_requires_at_least_one_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_profile_and_output(self):
        args = build_parser().parse_args(["fig7", "--profile", "full", "--output", "x.txt"])
        assert args.experiments == ["fig7"]
        assert args.profile == "full"
        assert args.output == "x.txt"


class TestMain:
    def test_unknown_experiment_returns_error_code(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_table1_runs_and_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "p1, p5, p6, p9, p10" in out

    def test_markdown_output(self, capsys):
        assert main(["table1", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("|")

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table1", "--output", str(target)]) == 0
        assert "Table I" in target.read_text()

    def test_module_entry_point_importable(self):
        import repro.__main__  # noqa: F401


class TestBatchQueryCommand:
    def test_parses_sharding_options(self):
        args = build_batch_query_parser().parse_args(
            ["--workers", "4", "--shards", "8", "--partitioner", "po-group", "--cache-size", "16"]
        )
        assert args.workers == "4"
        assert args.shards == 8
        assert args.partitioner == "po-group"
        assert args.cache_size == 16

    def test_batch_query_runs_sharded_in_process(self, capsys):
        code = main(
            [
                "batch-query",
                "--cardinality", "300",
                "--queries", "2",
                "--workers", "0",
                "--shards", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "base" in out and "cached topologies" in out

    def test_profile_prints_sane_phase_timings(self, capsys):
        import re

        code = main(
            ["batch-query", "--cardinality", "300", "--queries", "2", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        match = re.search(
            r"phases: kernel_warmup (\S+) ms \| encode (\S+) ms \| build (\S+) ms "
            r"\| index_build (\S+) ms \| query (\S+) ms \| merge (\S+) ms "
            r"\| total (\S+) ms",
            out,
        )
        assert match, out
        warmup, encode, build, index_build, query, merge, total = (
            float(g) for g in match.groups()
        )
        assert all(
            value >= 0.0
            for value in (warmup, encode, build, index_build, query, merge)
        )
        # The phases sum to the printed total (each of the seven numbers
        # carries up to 0.05 ms of :.1f print rounding).
        assert (
            abs((warmup + encode + build + index_build + query + merge) - total) <= 0.4
        )

    def test_frame_flag_parses_and_runs(self, capsys):
        args = build_batch_query_parser().parse_args(["--frame", "off"])
        assert args.frame == "off"
        for mode in ("on", "off"):
            code = main(
                ["batch-query", "--cardinality", "200", "--queries", "1", "--frame", mode]
            )
            assert code == 0
        assert "cached topologies" in capsys.readouterr().out

    def test_bad_workers_value_is_reported(self, capsys):
        code = main(["batch-query", "--cardinality", "100", "--workers", "lots"])
        assert code == 2
        assert "worker count" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["lots", "-2", "1.5"])
    def test_bad_workers_flag_never_tracebacks(self, capsys, bad):
        code = main(["batch-query", "--cardinality", "100", "--workers", bad])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    @pytest.mark.parametrize("bad", ["lots", "-2", "1.5"])
    def test_bad_workers_env_var_named_in_error(self, capsys, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        code = main(["batch-query", "--cardinality", "100"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "REPRO_WORKERS" in err
        assert "Traceback" not in err

    def test_merge_strategy_flag_parsed_and_run(self, capsys):
        code = main(
            [
                "batch-query",
                "--cardinality", "300",
                "--queries", "1",
                "--workers", "0",
                "--shards", "2",
                "--merge-strategy", "all-pairs",
            ]
        )
        assert code == 0
        assert "cached topologies" in capsys.readouterr().out

    def test_bad_merge_env_var_named_in_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_MERGE", "zipper")
        code = main(["batch-query", "--cardinality", "100"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "REPRO_MERGE" in err

    def test_index_flag_parses_and_runs(self, capsys):
        from repro.index.registry import set_default_index

        from repro.index.registry import available_indexes

        args = build_batch_query_parser().parse_args(["--index", "pointer"])
        assert args.index == "pointer"
        try:
            for backend in available_indexes():
                code = main(
                    [
                        "batch-query",
                        "--cardinality", "200",
                        "--queries", "1",
                        "--index", backend,
                    ]
                )
                assert code == 0
        finally:
            set_default_index(None)
        assert "cached topologies" in capsys.readouterr().out

    def test_bad_index_value_is_reported(self, capsys):
        from repro.index.registry import resolve_index

        code = main(["batch-query", "--cardinality", "100", "--index", "btree"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "available indexes:" in err
        # A rejected flag must not leave a broken process-wide override.
        assert resolve_index(None) in ("flat", "pointer")

    def test_bad_index_env_var_fails_cleanly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX", "btree")
        code = main(["batch-query", "--cardinality", "100"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_bad_cache_size_is_reported(self, capsys):
        code = main(["batch-query", "--cardinality", "100", "--cache-size", "0"])
        assert code == 2
        assert "capacity" in capsys.readouterr().err

    def test_bad_shard_count_is_reported(self, capsys):
        code = main(["batch-query", "--cardinality", "100", "--workers", "1", "--shards", "0"])
        assert code == 2
        assert "num_shards" in capsys.readouterr().err


class TestPackAndStore:
    def test_pack_requires_out(self):
        from repro.cli import build_pack_parser

        with pytest.raises(SystemExit):
            build_pack_parser().parse_args([])

    def test_pack_then_query_matches_workload_run(self, tmp_path, capsys):
        store = tmp_path / "cli.rpro"
        common = ["--cardinality", "300", "--seed", "9"]
        assert main(["pack", *common, "--out", str(store)]) == 0
        assert "packed 300 tuples" in capsys.readouterr().out
        assert main(["batch-query", *common, "--queries", "2"]) == 0
        direct = capsys.readouterr().out
        # --seed keeps seeding the random queries; the workload knobs are
        # superseded by the packed store.
        assert main(
            ["batch-query", "--store", str(store), "--seed", "9", "--queries", "2"]
        ) == 0
        via_store = capsys.readouterr().out
        # Identical per-query skyline sizes, ingest path notwithstanding.
        pick = lambda text: [line.split("|skyline|=")[1].split()[0]
                             for line in text.splitlines() if "|skyline|" in line]
        assert pick(via_store) == pick(direct)

    def test_store_flag_parses(self):
        args = build_batch_query_parser().parse_args(
            ["--store", "x.rpro", "--mmap", "off"]
        )
        assert args.store == "x.rpro" and args.mmap == "off"

    def test_missing_store_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "gone.rpro"
        assert main(["batch-query", "--store", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and str(missing) in err
        assert "format version 1" in err

    def test_stale_store_names_path_and_version(self, tmp_path, capsys):
        stale = tmp_path / "stale.rpro"
        stale.write_bytes(b"not a store at all")
        assert main(["batch-query", "--store", str(stale)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert str(stale) in err and "format version 1" in err


class TestServeAndQueryParsers:
    def test_serve_parser_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.host is None and args.port is None
        assert args.workers is None and args.shards is None

    def test_query_parser_modes_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_query_parser().parse_args(["--seed", "3", "--stats"])
        args = build_query_parser().parse_args(["--seed", "3", "--repeat", "2"])
        assert args.seed == 3 and args.repeat == 2

    def test_query_against_no_server_fails_cleanly(self, capsys):
        # Port 1 is never listening; the client must fail with exit code 2.
        assert main(["query", "--port", "1", "--ping"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_overrides_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["query", "--overrides-json", str(tmp_path / "nope.json")]) == 2
        assert "overrides file" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["query", "--overrides-json", str(bad)]) == 2
        assert "overrides file" in capsys.readouterr().err
