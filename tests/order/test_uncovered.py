"""Unit tests for uncovered levels and SDC/SDC+ strata."""

from repro.order.builders import chain, diamond
from repro.order.dag import PartialOrderDAG
from repro.order.spanning_tree import extract_spanning_tree
from repro.order.uncovered import completely_covered, strata, uncovered_levels


class TestUncoveredLevels:
    def test_tree_shaped_dag_is_fully_covered(self):
        dag = chain(list("abcd"))
        tree = extract_spanning_tree(dag)
        assert set(uncovered_levels(tree).values()) == {0}
        assert completely_covered(tree) == set("abcd")

    def test_diamond_has_one_partially_covered_node(self):
        dag = diamond("t", ["m1", "m2"], "b")
        tree = extract_spanning_tree(dag)
        levels = uncovered_levels(tree)
        # "b" has two parents; one of the incoming edges is a non-tree edge.
        assert levels["t"] == 0 and levels["m1"] == 0 and levels["m2"] == 0
        assert levels["b"] == 1

    def test_levels_accumulate_along_paths(self):
        # Two stacked diamonds: the bottom node inherits the missing edges above it.
        dag = PartialOrderDAG(
            list("abcdefg"),
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
             ("d", "e"), ("d", "f"), ("e", "g"), ("f", "g")],
        )
        tree = extract_spanning_tree(dag)
        levels = uncovered_levels(tree)
        assert levels["d"] == 1
        assert levels["g"] == 2

    def test_roots_have_level_zero(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        levels = uncovered_levels(tree)
        for root in example_dag.roots():
            assert levels[root] == 0

    def test_dominators_have_smaller_or_equal_level(self, example_dag):
        """The SDC+ stratum property: a dominator never sits in a higher stratum."""
        tree = extract_spanning_tree(example_dag)
        levels = uncovered_levels(tree)
        for better in example_dag.values:
            for worse in example_dag.values:
                if example_dag.is_preferred(better, worse):
                    assert levels[better] <= levels[worse]

    def test_non_tree_edge_target_is_partially_covered(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        levels = uncovered_levels(tree)
        for _, target in tree.non_tree_edges():
            assert levels[target] >= 1


class TestStrata:
    def test_strata_partition_the_domain(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        grouped = strata(tree)
        flattened = [value for members in grouped.values() for value in members]
        assert sorted(flattened, key=str) == sorted(example_dag.values, key=str)

    def test_strata_keys_are_sorted(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        keys = list(strata(tree))
        assert keys == sorted(keys)

    def test_stratum_zero_is_completely_covered(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        grouped = strata(tree)
        assert set(grouped[0]) == completely_covered(tree)
