"""Unit tests for the TSS domain encoding."""

import pytest

from repro.exceptions import UnknownValueError
from repro.order.builders import antichain, chain
from repro.order.encoding import encode_domain, encode_domains
from repro.order.toposort import is_topological


class TestOrdinals:
    def test_ordinals_form_a_permutation(self, example_encoding, example_dag):
        ordinals = example_encoding.ordinals
        assert sorted(ordinals.values()) == list(range(1, len(example_dag) + 1))

    def test_order_is_topological(self, example_encoding, example_dag):
        assert is_topological(example_dag, list(example_encoding.order))

    def test_ordinal_respects_preferences(self, example_encoding, example_dag):
        for better, worse in example_dag.edges:
            assert example_encoding.ordinal(better) < example_encoding.ordinal(worse)

    def test_value_at_is_inverse_of_ordinal(self, example_encoding, example_dag):
        for value in example_dag.values:
            assert example_encoding.value_at(example_encoding.ordinal(value)) == value

    def test_value_at_out_of_range(self, example_encoding):
        with pytest.raises(UnknownValueError):
            example_encoding.value_at(0)
        with pytest.raises(UnknownValueError):
            example_encoding.value_at(100)

    def test_unknown_value_raises(self, example_encoding):
        with pytest.raises(UnknownValueError):
            example_encoding.ordinal("nope")
        with pytest.raises(UnknownValueError):
            example_encoding.interval_set("nope")

    def test_cardinality(self, example_encoding, example_dag):
        assert example_encoding.cardinality == len(example_dag)


class TestPreferences:
    def test_t_prefers_equals_reachability(self, example_encoding, example_dag):
        for x in example_dag.values:
            for y in example_dag.values:
                assert example_encoding.t_prefers(x, y) == example_dag.is_preferred(x, y)

    def test_t_prefers_or_equal(self, example_encoding):
        assert example_encoding.t_prefers_or_equal("a", "a")
        assert example_encoding.t_prefers_or_equal("a", "i")

    def test_m_prefers_implies_t_prefers(self, example_encoding, example_dag):
        for x in example_dag.values:
            for y in example_dag.values:
                if x != y and example_encoding.m_prefers(x, y):
                    assert example_encoding.t_prefers(x, y)

    def test_post_of_membership_form(self, example_encoding, example_dag):
        """x t-prefers-or-equals y  <=>  post(y) covered by intervals(x)."""
        for x in example_dag.values:
            for y in example_dag.values:
                expected = example_encoding.t_prefers_or_equal(x, y)
                got = example_encoding.interval_set(x).contains_point(example_encoding.post_of(y))
                assert got == expected

    def test_chain_is_fully_captured_by_the_tree(self):
        encoding = encode_domain(chain(list("abcd")))
        for x in "abcd":
            for y in "abcd":
                assert encoding.m_prefers(x, y) == encoding.t_prefers(x, y)

    def test_antichain_has_no_preferences(self):
        encoding = encode_domain(antichain(list("abc")))
        assert not any(encoding.t_prefers(x, y) for x in "abc" for y in "abc")


class TestRangesAndStrata:
    def test_values_in_range(self, example_encoding):
        values = example_encoding.values_in_range(1, 3)
        assert values == list(example_encoding.order[:3])
        assert example_encoding.values_in_range(8, 99) == list(example_encoding.order[7:])

    def test_range_interval_set_covers_every_member(self, example_encoding):
        merged = example_encoding.range_interval_set(2, 5)
        for value in example_encoding.values_in_range(2, 5):
            assert merged.covers(example_encoding.interval_set(value))

    def test_uncovered_levels_are_non_negative(self, example_encoding):
        assert all(level >= 0 for level in example_encoding.uncovered.values())
        assert example_encoding.max_uncovered_level >= 1  # the example has non-tree edges

    def test_completely_covered_values_exist(self, example_encoding):
        assert example_encoding.is_completely_covered("a")

    def test_encode_domains_helper(self, example_dag):
        encodings = encode_domains([example_dag, chain(list("xy"))])
        assert len(encodings) == 2
        assert encodings[1].cardinality == 2
