"""Unit tests for interval propagation (the exactness construction)."""

import pytest

from repro.order.builders import chain, antichain, diamond, random_dag
from repro.order.propagation import propagate_intervals, reachability_intervals
from repro.order.spanning_tree import extract_spanning_tree


def preference_matrix(dag):
    return {
        (x, y): dag.is_preferred_or_equal(x, y) for x in dag.values for y in dag.values
    }


class TestPropagation:
    def test_matches_reachability_construction_on_paper_example(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        assert propagate_intervals(tree) == reachability_intervals(tree)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reachability_on_random_dags(self, seed):
        dag = random_dag(12, edge_probability=0.3, seed=seed)
        tree = extract_spanning_tree(dag)
        assert propagate_intervals(tree) == reachability_intervals(tree)

    def test_covers_encodes_preference_exactly(self, example_dag):
        """x preferred-or-equal to y  <=>  intervals(x) covers intervals(y)."""
        tree = extract_spanning_tree(example_dag)
        intervals = propagate_intervals(tree)
        for x in example_dag.values:
            for y in example_dag.values:
                expected = example_dag.is_preferred_or_equal(x, y)
                assert intervals[x].covers(intervals[y]) == expected, (x, y)

    def test_covers_encodes_preference_on_diamond(self):
        dag = diamond("top", ["m1", "m2"], "bottom")
        tree = extract_spanning_tree(dag)
        intervals = propagate_intervals(tree)
        assert intervals["top"].covers(intervals["m1"])
        assert intervals["top"].covers(intervals["m2"])
        assert intervals["m1"].covers(intervals["bottom"])
        assert not intervals["m1"].covers(intervals["m2"])
        assert not intervals["bottom"].covers(intervals["top"])

    def test_chain_intervals_are_nested(self):
        dag = chain(list("abcde"))
        tree = extract_spanning_tree(dag)
        intervals = propagate_intervals(tree)
        for better, worse in zip("abcd", "bcde"):
            assert intervals[better].covers(intervals[worse])

    def test_antichain_intervals_are_pairwise_incomparable(self):
        dag = antichain(list("abcd"))
        tree = extract_spanning_tree(dag)
        intervals = propagate_intervals(tree)
        for x in dag.values:
            for y in dag.values:
                if x != y:
                    assert not intervals[x].covers(intervals[y])

    def test_root_interval_covers_whole_domain(self, example_dag):
        """The single root of the paper example reaches everything: one interval [1, 9]."""
        tree = extract_spanning_tree(example_dag)
        intervals = propagate_intervals(tree)
        root_points = set(intervals["a"].points())
        assert root_points == set(range(1, len(example_dag) + 1))

    def test_leaf_interval_is_its_own_post(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        intervals = propagate_intervals(tree)
        for leaf in example_dag.leaves():
            assert intervals[leaf].points() == [tree.post[leaf]]

    def test_interval_count_does_not_exceed_descendant_count(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        intervals = propagate_intervals(tree)
        for value in example_dag.values:
            reachable = len(example_dag.descendants(value)) + 1
            assert len(intervals[value]) <= reachable
            assert intervals[value].total_width() == reachable
