"""Unit tests for topological sorting strategies."""

import pytest

from repro.exceptions import PartialOrderError
from repro.order.builders import chain, antichain
from repro.order.dag import PartialOrderDAG
from repro.order.toposort import is_topological, ordinal_map, topological_sort, STRATEGIES


@pytest.fixture
def diamond():
    return PartialOrderDAG("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestStrategies:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_produces_a_valid_order(self, example_dag, strategy):
        order = topological_sort(example_dag, strategy=strategy)
        assert is_topological(example_dag, order)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_value_appears_exactly_once(self, example_dag, strategy):
        order = topological_sort(example_dag, strategy=strategy)
        assert sorted(order) == sorted(example_dag.values)

    def test_unknown_strategy_rejected(self, diamond):
        with pytest.raises(PartialOrderError):
            topological_sort(diamond, strategy="magic")

    def test_chain_sorts_to_itself(self):
        dag = chain(["x", "y", "z"])
        assert topological_sort(dag) == ["x", "y", "z"]

    def test_antichain_keeps_insertion_order_with_kahn(self):
        dag = antichain(["c", "a", "b"])
        assert topological_sort(dag, strategy="kahn") == ["c", "a", "b"]

    def test_lexicographic_breaks_ties_by_value(self):
        dag = antichain(["c", "a", "b"])
        assert topological_sort(dag, strategy="lexicographic") == ["a", "b", "c"]

    def test_lexicographic_with_custom_key(self, diamond):
        order = topological_sort(diamond, strategy="lexicographic", key=lambda v: -ord(v))
        assert is_topological(diamond, order)
        # c comes before b because of the reversed key.
        assert order.index("c") < order.index("b")

    def test_by_height_groups_levels(self, diamond):
        order = topological_sort(diamond, strategy="by_height")
        assert order[0] == "a"
        assert order[-1] == "d"
        assert set(order[1:3]) == {"b", "c"}

    def test_paper_example_admits_alphabetical_order(self, example_dag):
        """Figure 2(c): a < b < ... < i is an admissible topological sort."""
        assert is_topological(example_dag, list("abcdefghi"))


class TestHelpers:
    def test_ordinal_map_is_one_based(self):
        ordinals = ordinal_map(["x", "y", "z"])
        assert ordinals == {"x": 1, "y": 2, "z": 3}

    def test_ordinal_map_custom_start(self):
        assert ordinal_map(["x"], start=5) == {"x": 5}

    def test_is_topological_rejects_wrong_length(self, diamond):
        assert not is_topological(diamond, ["a", "b", "c"])

    def test_is_topological_rejects_backward_edge(self, diamond):
        assert not is_topological(diamond, ["d", "c", "b", "a"])

    def test_is_topological_rejects_wrong_values(self, diamond):
        assert not is_topological(diamond, ["a", "b", "c", "x"])
