"""Unit tests for the partial-order DAG type."""

import pytest

from repro.exceptions import CycleError, PartialOrderError, UnknownValueError
from repro.order.dag import PartialOrderDAG


class TestConstruction:
    def test_values_preserve_insertion_order(self):
        dag = PartialOrderDAG(["c", "a", "b"], [])
        assert dag.values == ("c", "a", "b")

    def test_duplicate_values_rejected(self):
        with pytest.raises(PartialOrderError):
            PartialOrderDAG(["a", "a"], [])

    def test_edge_with_unknown_value_rejected(self):
        with pytest.raises(UnknownValueError):
            PartialOrderDAG(["a", "b"], [("a", "z")])

    def test_self_loop_rejected(self):
        with pytest.raises(PartialOrderError):
            PartialOrderDAG(["a"], [("a", "a")])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            PartialOrderDAG(["a", "b", "c"], [("a", "b"), ("b", "c"), ("c", "a")])

    def test_parallel_edges_collapsed(self):
        dag = PartialOrderDAG(["a", "b"], [("a", "b"), ("a", "b")])
        assert dag.num_edges == 1

    def test_from_mapping(self):
        dag = PartialOrderDAG.from_mapping({"a": ["b", "c"], "b": ["d"]})
        assert set(dag.values) == {"a", "b", "c", "d"}
        assert dag.is_preferred("a", "d")

    def test_add_edge_after_construction_checks_cycles(self):
        dag = PartialOrderDAG(["a", "b"], [("a", "b")])
        with pytest.raises(CycleError):
            dag.add_edge("b", "a")

    def test_len_contains_iter(self):
        dag = PartialOrderDAG(["a", "b"], [("a", "b")])
        assert len(dag) == 2
        assert "a" in dag and "z" not in dag
        assert list(dag) == ["a", "b"]


class TestReachability:
    @pytest.fixture
    def diamond(self):
        return PartialOrderDAG("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])

    def test_descendants(self, diamond):
        assert diamond.descendants("a") == {"b", "c", "d"}
        assert diamond.descendants("d") == frozenset()

    def test_ancestors(self, diamond):
        assert diamond.ancestors("d") == {"a", "b", "c"}
        assert diamond.ancestors("a") == frozenset()

    def test_is_preferred_direct_and_transitive(self, diamond):
        assert diamond.is_preferred("a", "b")
        assert diamond.is_preferred("a", "d")
        assert not diamond.is_preferred("b", "c")
        assert not diamond.is_preferred("d", "a")

    def test_is_preferred_is_irreflexive(self, diamond):
        assert not diamond.is_preferred("b", "b")
        assert diamond.is_preferred_or_equal("b", "b")

    def test_compare(self, diamond):
        assert diamond.compare("a", "d") == -1
        assert diamond.compare("d", "a") == 1
        assert diamond.compare("b", "b") == 0
        assert diamond.compare("b", "c") is None

    def test_are_comparable(self, diamond):
        assert diamond.are_comparable("a", "d")
        assert not diamond.are_comparable("b", "c")

    def test_reachability_updates_after_add_edge(self, diamond):
        assert not diamond.is_preferred("b", "c")
        diamond.add_edge("b", "c")
        assert diamond.is_preferred("b", "c")

    def test_unknown_value_raises(self, diamond):
        with pytest.raises(UnknownValueError):
            diamond.is_preferred("a", "z")


class TestStructure:
    def test_roots_and_leaves(self, example_dag):
        assert example_dag.roots() == ("a",)
        assert set(example_dag.leaves()) == {"h", "i"}

    def test_degrees(self, example_dag):
        assert example_dag.out_degree("a") == 3
        assert example_dag.in_degree("a") == 0
        assert example_dag.in_degree("g") == 4

    def test_height_of_chain(self):
        chain = PartialOrderDAG("abcd", [("a", "b"), ("b", "c"), ("c", "d")])
        assert chain.height() == 3

    def test_height_of_antichain_is_zero(self):
        assert PartialOrderDAG("abc", []).height() == 0

    def test_transitive_reduction_removes_shortcuts(self):
        dag = PartialOrderDAG("abc", [("a", "b"), ("b", "c"), ("a", "c")])
        reduced = dag.transitive_reduction()
        assert set(reduced.edges) == {("a", "b"), ("b", "c")}
        # Reachability is preserved.
        assert reduced.is_preferred("a", "c")

    def test_transitive_closure_edges(self):
        dag = PartialOrderDAG("abc", [("a", "b"), ("b", "c")])
        assert set(dag.transitive_closure_edges()) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_restrict_preserves_indirect_preferences(self):
        chain = PartialOrderDAG("abcd", [("a", "b"), ("b", "c"), ("c", "d")])
        restricted = chain.restrict(["a", "c", "d"])
        assert set(restricted.values) == {"a", "c", "d"}
        assert restricted.is_preferred("a", "c")
        assert restricted.is_preferred("a", "d")
        # Hasse property: no redundant edge a -> d.
        assert ("a", "d") not in restricted.edges

    def test_relabel(self):
        dag = PartialOrderDAG(["a", "b"], [("a", "b")])
        relabeled = dag.relabel({"a": 1, "b": 2})
        assert relabeled.is_preferred(1, 2)

    def test_copy_is_independent(self):
        dag = PartialOrderDAG(["a", "b", "c"], [("a", "b")])
        clone = dag.copy()
        clone.add_edge("b", "c")
        assert not dag.is_preferred("b", "c")
        assert clone.is_preferred("b", "c")
