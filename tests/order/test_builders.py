"""Unit tests for the partial-order convenience builders."""

import pytest

from repro.exceptions import CycleError, PartialOrderError
from repro.order.builders import (
    airline_preference_dag,
    airline_preference_dag_second,
    antichain,
    chain,
    dag_from_edges,
    dag_from_preferences,
    diamond,
    interval_order,
    layered_dag,
    paper_example_dag,
    random_dag,
    tree_order,
)


class TestBasicBuilders:
    def test_chain(self):
        dag = chain([3, 1, 2])
        assert dag.is_preferred(3, 2) and dag.is_preferred(1, 2)
        assert dag.height() == 2

    def test_antichain(self):
        dag = antichain(["x", "y"])
        assert dag.num_edges == 0

    def test_diamond(self):
        dag = diamond("t", ["m1", "m2"], "b")
        assert dag.is_preferred("t", "b")
        assert not dag.are_comparable("m1", "m2")

    def test_diamond_rejects_duplicate_middles(self):
        with pytest.raises(PartialOrderError):
            diamond("t", ["m", "m"], "b")

    def test_dag_from_edges_infers_values(self):
        dag = dag_from_edges([("a", "b"), ("b", "c")])
        assert set(dag.values) == {"a", "b", "c"}

    def test_dag_from_preferences_reduces_transitively(self):
        dag = dag_from_preferences("abc", [("a", "b"), ("b", "c"), ("a", "c")])
        assert set(dag.edges) == {("a", "b"), ("b", "c")}
        assert dag.is_preferred("a", "c")

    def test_dag_from_preferences_rejects_cycles(self):
        with pytest.raises(CycleError):
            dag_from_preferences("ab", [("a", "b"), ("b", "a")])

    def test_tree_order(self):
        dag = tree_order({"child1": "root", "child2": "root", "grandchild": "child1"})
        assert dag.is_preferred("root", "grandchild")
        assert not dag.are_comparable("child1", "child2")

    def test_interval_order(self):
        dag = interval_order({"early": (0, 1), "mid": (2, 3), "late": (5, 6), "overlap": (0.5, 2.5)})
        assert dag.is_preferred("early", "mid")
        assert dag.is_preferred("early", "late")
        assert not dag.are_comparable("early", "overlap")


class TestRandomBuilders:
    def test_random_dag_is_deterministic_per_seed(self):
        a = random_dag(10, edge_probability=0.3, seed=1)
        b = random_dag(10, edge_probability=0.3, seed=1)
        assert a.edges == b.edges

    def test_random_dag_is_acyclic_for_any_probability(self):
        for probability in (0.0, 0.5, 1.0):
            dag = random_dag(8, edge_probability=probability, seed=2)
            assert len(dag) == 8  # construction would raise on a cycle

    def test_random_dag_invalid_arguments(self):
        with pytest.raises(PartialOrderError):
            random_dag(0)
        with pytest.raises(PartialOrderError):
            random_dag(3, edge_probability=1.5)

    def test_layered_dag_height(self):
        dag = layered_dag([2, 3, 2], edge_probability=0.5, seed=7)
        assert dag.height() == 2
        assert len(dag) == 7

    def test_layered_dag_rejects_empty_layers(self):
        with pytest.raises(PartialOrderError):
            layered_dag([2, 0, 1])


class TestPaperBuilders:
    def test_paper_example_dag_shape(self):
        dag = paper_example_dag()
        assert len(dag) == 9
        assert dag.roots() == ("a",)
        assert dag.is_preferred("a", "i")
        assert dag.is_preferred("c", "h")

    def test_airline_dag_first_row(self):
        dag = airline_preference_dag()
        assert dag.is_preferred("a", "b")
        assert dag.is_preferred("a", "d")
        assert not dag.are_comparable("b", "c")

    def test_airline_dag_second_row(self):
        dag = airline_preference_dag_second()
        assert dag.is_preferred("b", "a")
        assert dag.num_edges == 1
