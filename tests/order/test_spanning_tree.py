"""Unit tests for spanning-tree extraction and postorder interval labelling."""

import pytest

from repro.exceptions import PartialOrderError
from repro.order.builders import chain, antichain
from repro.order.dag import PartialOrderDAG
from repro.order.intervals import Interval
from repro.order.spanning_tree import extract_spanning_tree, PARENT_STRATEGIES


class TestExtraction:
    def test_every_node_gets_a_post_number(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        posts = sorted(tree.post.values())
        assert posts == list(range(1, len(example_dag) + 1))

    def test_roots_have_no_parent(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        assert tree.parent["a"] is None
        assert all(tree.parent[v] is not None for v in example_dag.values if v != "a")

    def test_parent_is_a_dag_predecessor(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        for child, parent in tree.parent.items():
            if parent is not None:
                assert parent in example_dag.predecessors(child)

    def test_tree_edges_plus_non_tree_edges_cover_all_edges(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        assert set(tree.tree_edges()) | set(tree.non_tree_edges()) == set(example_dag.edges)
        assert not set(tree.tree_edges()) & set(tree.non_tree_edges())

    def test_forest_for_multi_root_dag(self):
        dag = PartialOrderDAG("abcd", [("a", "c"), ("b", "d")])
        tree = extract_spanning_tree(dag)
        assert tree.parent["a"] is None and tree.parent["b"] is None
        assert sorted(tree.post.values()) == [1, 2, 3, 4]

    def test_antichain_is_all_roots(self):
        dag = antichain(["x", "y", "z"])
        tree = extract_spanning_tree(dag)
        assert all(parent is None for parent in tree.parent.values())

    @pytest.mark.parametrize("strategy", PARENT_STRATEGIES)
    def test_parent_strategies_produce_valid_trees(self, example_dag, strategy):
        tree = extract_spanning_tree(example_dag, parent_choice=strategy)
        for child, parent in tree.parent.items():
            if parent is not None:
                assert parent in example_dag.predecessors(child)

    def test_callable_parent_choice(self, example_dag):
        tree = extract_spanning_tree(example_dag, parent_choice=lambda node, preds: preds[-1])
        assert tree.parent["g"] in example_dag.predecessors("g")

    def test_invalid_parent_choice_name(self, example_dag):
        with pytest.raises(PartialOrderError):
            extract_spanning_tree(example_dag, parent_choice="bogus")

    def test_callable_returning_non_predecessor_rejected(self, example_dag):
        with pytest.raises(PartialOrderError):
            extract_spanning_tree(example_dag, parent_choice=lambda node, preds: "a" if node == "i" and "a" not in preds else preds[0])


class TestIntervals:
    def test_interval_is_minpost_post(self):
        dag = chain(["a", "b", "c"])
        tree = extract_spanning_tree(dag)
        # Postorder of a chain rooted at a: c=1, b=2, a=3.
        assert tree.interval("c") == Interval(1, 1)
        assert tree.interval("b") == Interval(1, 2)
        assert tree.interval("a") == Interval(1, 3)

    def test_subtree_intervals_are_nested(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        for child, parent in tree.parent.items():
            if parent is not None:
                assert tree.interval(parent).contains(tree.interval(child))

    def test_tree_descendants_match_interval_containment(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        for value in example_dag.values:
            descendants = tree.tree_descendants(value)
            covered = {
                other
                for other in example_dag.values
                if other != value and tree.interval(value).contains(tree.interval(other))
            }
            assert covered == descendants

    def test_tree_prefers_implies_dag_preference(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        for x in example_dag.values:
            for y in example_dag.values:
                if x != y and tree.tree_prefers(x, y):
                    assert example_dag.is_preferred(x, y)

    def test_tree_prefers_is_irreflexive(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        assert not any(tree.tree_prefers(v, v) for v in example_dag.values)

    def test_intervals_mapping_covers_domain(self, example_dag):
        tree = extract_spanning_tree(example_dag)
        intervals = tree.intervals()
        assert set(intervals) == set(example_dag.values)

    def test_paper_tree_misses_some_preferences(self, example_dag):
        """The spanning tree cannot capture every preference of Figure 2(a)."""
        tree = extract_spanning_tree(example_dag)
        missed = [
            (x, y)
            for x in example_dag.values
            for y in example_dag.values
            if x != y and example_dag.is_preferred(x, y) and not tree.tree_prefers(x, y)
        ]
        assert missed, "a DAG with non-tree edges must have preferences the tree misses"
