"""Unit tests for intervals and interval sets."""

import pytest

from repro.exceptions import PartialOrderError
from repro.order.intervals import Interval, IntervalSet


class TestInterval:
    def test_invalid_interval_rejected(self):
        with pytest.raises(PartialOrderError):
            Interval(5, 3)

    def test_membership(self):
        interval = Interval(2, 5)
        assert 2 in interval and 5 in interval and 3 in interval
        assert 1 not in interval and 6 not in interval

    def test_contains(self):
        assert Interval(1, 9).contains(Interval(3, 6))
        assert Interval(3, 6).contains(Interval(3, 6))
        assert not Interval(3, 6).contains(Interval(1, 9))
        assert not Interval(1, 4).contains(Interval(3, 6))

    def test_overlaps_and_adjacent(self):
        assert Interval(1, 4).overlaps(Interval(4, 6))
        assert not Interval(1, 3).overlaps(Interval(5, 6))
        assert Interval(1, 3).adjacent(Interval(4, 6))
        assert not Interval(1, 3).adjacent(Interval(5, 6))

    def test_merge(self):
        assert Interval(1, 3).merge(Interval(4, 6)) == Interval(1, 6)
        assert Interval(1, 5).merge(Interval(3, 8)) == Interval(1, 8)
        with pytest.raises(PartialOrderError):
            Interval(1, 2).merge(Interval(5, 6))

    def test_width_and_str(self):
        assert Interval(3, 6).width() == 4
        assert str(Interval(3, 6)) == "[3,6]"

    def test_ordering(self):
        assert Interval(1, 2) < Interval(2, 3)


class TestIntervalSet:
    def test_normalization_merges_overlaps_and_adjacency(self):
        s = IntervalSet([(5, 7), (1, 2), (6, 9)])
        assert s.intervals == (Interval(1, 2), Interval(5, 9))

    def test_normalization_merges_chains_of_adjacent_intervals(self):
        s = IntervalSet([(5, 7), (1, 2), (3, 4), (6, 9)])
        assert s.intervals == (Interval(1, 9),)

    def test_accepts_interval_objects_and_tuples(self):
        assert IntervalSet([Interval(1, 2)]) == IntervalSet([(1, 2)])

    def test_equality_and_hash_are_canonical(self):
        a = IntervalSet([(1, 2), (3, 4)])
        b = IntervalSet([(1, 4)])
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_set(self):
        s = IntervalSet()
        assert not s
        assert len(s) == 0
        assert not s.contains_point(1)

    def test_contains_point(self):
        s = IntervalSet([(1, 3), (7, 9)])
        for point in (1, 2, 3, 7, 9):
            assert s.contains_point(point)
        for point in (0, 4, 6, 10):
            assert not s.contains_point(point)

    def test_contains_interval(self):
        s = IntervalSet([(1, 3), (7, 9)])
        assert s.contains_interval(Interval(1, 3))
        assert s.contains_interval(Interval(8, 9))
        assert not s.contains_interval(Interval(2, 8))
        assert not s.contains_interval(Interval(4, 5))

    def test_covers(self):
        big = IntervalSet([(1, 5), (7, 9)])
        small = IntervalSet([(2, 4), (7, 7)])
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(IntervalSet())

    def test_covers_is_reflexive(self):
        s = IntervalSet([(1, 2), (5, 9)])
        assert s.covers(s)

    def test_union_and_add(self):
        s = IntervalSet([(1, 2)])
        assert s.union(IntervalSet([(3, 4)])) == IntervalSet([(1, 4)])
        assert s.add((10, 12)) == IntervalSet([(1, 2), (10, 12)])

    def test_points_and_width(self):
        s = IntervalSet([(1, 3), (6, 6)])
        assert s.points() == [1, 2, 3, 6]
        assert s.total_width() == 4

    def test_from_points_round_trip(self):
        points = [9, 1, 2, 3, 7, 8]
        s = IntervalSet.from_points(points)
        assert s == IntervalSet([(1, 3), (7, 9)])
        assert sorted(s.points()) == sorted(set(points))

    def test_from_points_empty(self):
        assert IntervalSet.from_points([]) == IntervalSet()

    def test_covers_iff_point_subset(self):
        """Canonical sets: covering equals subset relation on the covered points."""
        a = IntervalSet.from_points([1, 2, 3, 8])
        b = IntervalSet.from_points([2, 3])
        c = IntervalSet.from_points([2, 3, 5])
        assert a.covers(b)
        assert not a.covers(c)
        assert set(b.points()) <= set(a.points())
        assert not set(c.points()) <= set(a.points())
