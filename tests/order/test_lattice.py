"""Unit tests for the subset-lattice PO-domain generator."""

import pytest

from repro.exceptions import PartialOrderError
from repro.order.lattice import describe_lattice, lattice_domain, subset_lattice


class TestSubsetLattice:
    def test_full_lattice_size_and_height(self):
        dag = subset_lattice(["x", "y", "z"])
        assert len(dag) == 8
        assert dag.height() == 3

    def test_preference_is_containment(self):
        dag = subset_lattice(["x", "y"])
        empty, x, y, xy = frozenset(), frozenset({"x"}), frozenset({"y"}), frozenset({"x", "y"})
        assert dag.is_preferred(empty, xy)
        assert dag.is_preferred(x, xy)
        assert not dag.is_preferred(x, y)
        assert not dag.is_preferred(xy, x)

    def test_duplicate_objects_rejected(self):
        with pytest.raises(PartialOrderError):
            subset_lattice(["x", "x"])


class TestLatticeDomain:
    def test_full_density_keeps_everything(self):
        dag = lattice_domain(4, 1.0)
        assert len(dag) == 16
        assert dag.height() == 4

    def test_density_controls_expected_size(self):
        full = lattice_domain(6, 1.0)
        sparse = lattice_domain(6, 0.3, seed=3)
        assert len(sparse) < len(full)
        # d = |V| / 2^h should be roughly the requested density.
        assert 0.15 <= len(sparse) / 2**6 <= 0.55

    def test_sampling_is_deterministic_per_seed(self):
        a = lattice_domain(5, 0.5, seed=42)
        b = lattice_domain(5, 0.5, seed=42)
        c = lattice_domain(5, 0.5, seed=43)
        assert a.values == b.values and a.edges == b.edges
        assert a.values != c.values or a.edges != c.edges

    def test_keep_extremes(self):
        dag = lattice_domain(5, 0.2, seed=1, keep_extremes=True)
        assert 0 in dag and (2**5 - 1) in dag

    def test_without_keep_extremes(self):
        dag = lattice_domain(5, 0.2, seed=1, keep_extremes=False)
        assert len(dag) >= 1

    def test_edges_follow_containment(self):
        dag = lattice_domain(4, 0.7, seed=9)
        for better, worse in dag.edges:
            assert better & worse == better  # better is a subset
            assert bin(worse ^ better).count("1") == 1  # exactly one object added

    def test_invalid_parameters(self):
        with pytest.raises(PartialOrderError):
            lattice_domain(0)
        with pytest.raises(PartialOrderError):
            lattice_domain(3, 0.0)
        with pytest.raises(PartialOrderError):
            lattice_domain(3, 1.5)

    def test_describe_lattice(self):
        stats = describe_lattice(lattice_domain(3, 1.0))
        assert stats["nodes"] == 8
        assert stats["height"] == 3
        assert stats["roots"] == 1
        assert stats["leaves"] == 1
        assert stats["avg_out_degree"] > 0
