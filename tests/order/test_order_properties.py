"""Property-based tests for the partial-order substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.order.encoding import encode_domain
from repro.order.intervals import IntervalSet
from repro.order.propagation import propagate_intervals, reachability_intervals
from repro.order.spanning_tree import extract_spanning_tree
from repro.order.toposort import is_topological, topological_sort

from tests.conftest import random_dag_strategy


@settings(max_examples=60, deadline=None)
@given(dag=random_dag_strategy(max_values=12))
def test_topological_sort_is_always_valid(dag):
    for strategy in ("kahn", "dfs", "lexicographic", "by_height"):
        order = topological_sort(dag, strategy=strategy)
        assert is_topological(dag, order)


@settings(max_examples=60, deadline=None)
@given(dag=random_dag_strategy(max_values=12))
def test_propagation_equals_reachability_intervals(dag):
    tree = extract_spanning_tree(dag)
    assert propagate_intervals(tree) == reachability_intervals(tree)


@settings(max_examples=60, deadline=None)
@given(dag=random_dag_strategy(max_values=10))
def test_t_preference_is_exactly_reachability(dag):
    encoding = encode_domain(dag)
    for x in dag.values:
        for y in dag.values:
            if x == y:
                continue
            assert encoding.t_prefers(x, y) == dag.is_preferred(x, y)


@settings(max_examples=60, deadline=None)
@given(dag=random_dag_strategy(max_values=10))
def test_m_preference_is_sound_but_possibly_incomplete(dag):
    """Spanning-tree preference never invents a preference that is not in the DAG."""
    encoding = encode_domain(dag)
    for x in dag.values:
        for y in dag.values:
            if x != y and encoding.m_prefers(x, y):
                assert dag.is_preferred(x, y)


@settings(max_examples=60, deadline=None)
@given(dag=random_dag_strategy(max_values=10))
def test_dominators_never_sit_in_higher_strata(dag):
    encoding = encode_domain(dag)
    for x in dag.values:
        for y in dag.values:
            if dag.is_preferred(x, y):
                assert encoding.uncovered[x] <= encoding.uncovered[y]


@settings(max_examples=60, deadline=None)
@given(dag=random_dag_strategy(max_values=10))
def test_range_interval_set_covers_each_member(dag):
    encoding = encode_domain(dag)
    n = encoding.cardinality
    merged = encoding.range_interval_set(1, n)
    for value in dag.values:
        assert merged.covers(encoding.interval_set(value))


@settings(max_examples=80, deadline=None)
@given(points=st.lists(st.integers(min_value=1, max_value=60), max_size=40))
def test_interval_set_from_points_round_trips(points):
    interval_set = IntervalSet.from_points(points)
    assert sorted(interval_set.points()) == sorted(set(points))


@settings(max_examples=80, deadline=None)
@given(
    a=st.sets(st.integers(min_value=1, max_value=30), max_size=20),
    b=st.sets(st.integers(min_value=1, max_value=30), max_size=20),
)
def test_interval_set_covers_equals_subset(a, b):
    set_a = IntervalSet.from_points(a)
    set_b = IntervalSet.from_points(b)
    assert set_a.covers(set_b) == (b <= a)
