"""Unit tests for networkx interoperability helpers."""

import pytest

from repro.exceptions import PartialOrderError
from repro.order.builders import antichain, chain
from repro.order.dag import PartialOrderDAG

nx = pytest.importorskip("networkx")

from repro.order.interop import (  # noqa: E402
    comparability_ratio,
    from_networkx,
    from_preference_graph,
    to_networkx,
)


class TestConversions:
    def test_round_trip(self, example_dag):
        graph = to_networkx(example_dag)
        assert set(graph.nodes) == set(example_dag.values)
        assert set(graph.edges) == set(example_dag.edges)
        back = from_networkx(graph)
        for x in example_dag.values:
            for y in example_dag.values:
                assert back.is_preferred(x, y) == example_dag.is_preferred(x, y)

    def test_from_networkx_rejects_undirected_graphs(self):
        with pytest.raises(PartialOrderError):
            from_networkx(nx.Graph([("a", "b")]))

    def test_from_networkx_rejects_cycles(self):
        graph = nx.DiGraph([("a", "b"), ("b", "a")])
        with pytest.raises(PartialOrderError):
            from_networkx(graph)

    def test_from_networkx_with_reduction(self):
        graph = nx.DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        dag = from_networkx(graph, reduce=True)
        assert set(dag.edges) == {("a", "b"), ("b", "c")}
        assert dag.is_preferred("a", "c")

    def test_reachability_matches_networkx(self, example_dag):
        graph = to_networkx(example_dag)
        for value in example_dag.values:
            assert set(example_dag.descendants(value)) == set(nx.descendants(graph, value))


class TestPreferenceGraphCondensation:
    def test_contradictory_preferences_are_collapsed(self):
        graph = nx.DiGraph([("a", "b"), ("b", "a"), ("a", "c"), ("d", "a")])
        dag = from_preference_graph(graph)
        # a and b collapse into one representative ("a", the lexicographic min).
        assert "a" in dag and "b" not in dag
        assert dag.is_preferred("a", "c")
        assert dag.is_preferred("d", "c")

    def test_acyclic_graph_is_just_reduced(self):
        graph = nx.DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        dag = from_preference_graph(graph)
        assert set(dag.edges) == {("a", "b"), ("b", "c")}


class TestComparabilityRatio:
    def test_total_order(self):
        assert comparability_ratio(chain(list("abcd"))) == pytest.approx(1.0)

    def test_antichain(self):
        assert comparability_ratio(antichain(list("abcd"))) == pytest.approx(0.0)

    def test_diamond_is_in_between(self):
        dag = PartialOrderDAG("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        ratio = comparability_ratio(dag)
        assert 0.0 < ratio < 1.0
        assert ratio == pytest.approx(5 / 6)

    def test_trivial_domains(self):
        assert comparability_ratio(antichain(["x"])) == 1.0
